//! The result cache: a plain-std LRU sharded across independent locks.
//!
//! [`LruCache`] is the single-lock building block: a `HashMap` index
//! over an intrusive doubly-linked recency list stored in a slab.
//! `get` and `insert` are O(1); eviction removes the least-recently
//! used entry.
//!
//! [`ShardedCache`] spreads keys across a power-of-two number of
//! `Mutex<LruCache>` shards by hashing the canonical spec+algorithm
//! string, so concurrent connections contend on `1/N` of the
//! keyspace instead of one global lock.  Hit/miss/eviction counters
//! are aggregated across shards and every stored-or-evicted entry is
//! accounted for: `admitted == len + evictions + ttl_evictions` at
//! all times.
//!
//! An optional **TTL** bounds staleness: entries older than the
//! configured duration expire lazily on lookup (no sweeper thread) and
//! are counted separately from capacity evictions, so the telemetry
//! distinguishes "pushed out by hotter keys" from "aged out".

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    stamp: Instant,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.  Capacity 0 disables
/// storage entirely (every lookup misses, inserts are dropped).
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
    ttl: Option<Duration>,
    /// Fixed stamp used when no TTL is set, so the no-TTL path never
    /// pays a clock read.
    epoch: Instant,
    evictions: u64,
    ttl_evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries, no TTL.
    pub fn new(capacity: usize) -> Self {
        Self::with_ttl(capacity, None)
    }

    /// A cache holding at most `capacity` entries whose entries also
    /// expire `ttl` after insertion (checked lazily on lookup).
    pub fn with_ttl(capacity: usize, ttl: Option<Duration>) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
            ttl,
            epoch: Instant::now(),
            evictions: 0,
            ttl_evictions: 0,
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured TTL, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Entries displaced by capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries expired by TTL so far.
    pub fn ttl_evictions(&self) -> u64 {
        self.ttl_evictions
    }

    fn stamp(&self) -> Instant {
        if self.ttl.is_some() {
            Instant::now()
        } else {
            self.epoch
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Remove slot `i` entirely, keeping the slab dense by swapping
    /// the last slot into its place and re-pointing that slot's list
    /// neighbors and map entry.
    fn remove_index(&mut self, i: usize) {
        self.unlink(i);
        self.map.remove(&self.slots[i].key);
        let last = self.slots.len() - 1;
        if i != last {
            let (prev, next) = (self.slots[last].prev, self.slots[last].next);
            if prev == NIL {
                self.head = i;
            } else {
                self.slots[prev].next = i;
            }
            if next == NIL {
                self.tail = i;
            } else {
                self.slots[next].prev = i;
            }
            self.slots.swap(i, last);
            *self.map.get_mut(&self.slots[i].key).unwrap() = i;
        }
        self.slots.pop();
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    /// An entry past its TTL is removed and reported as a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if let Some(ttl) = self.ttl {
            if self.slots[i].stamp.elapsed() >= ttl {
                self.remove_index(i);
                self.ttl_evictions += 1;
                return None;
            }
        }
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Insert or refresh an entry, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_reporting(key, value);
    }

    /// [`insert`](Self::insert), reporting what happened so callers
    /// can keep exact admission/eviction accounts.
    pub fn insert_reporting(&mut self, key: K, value: V) -> InsertOutcome<K> {
        self.insert_stamped(key, value, self.stamp())
    }

    /// Insert an entry that is already `age` old — the restore half of
    /// snapshot/warm-fill.  An entry at or past the TTL is dropped
    /// (and counted as a TTL eviction) instead of stored, so a stale
    /// snapshot can never resurrect expired results.
    pub fn insert_aged(&mut self, key: K, value: V, age: Duration) -> InsertOutcome<K> {
        if let Some(ttl) = self.ttl {
            if age >= ttl {
                self.ttl_evictions += 1;
                return InsertOutcome::Dropped;
            }
        }
        let stamp = self.stamp().checked_sub(age).unwrap_or(self.epoch);
        self.insert_stamped(key, value, stamp)
    }

    fn insert_stamped(&mut self, key: K, value: V, stamp: Instant) -> InsertOutcome<K> {
        if self.capacity == 0 {
            return InsertOutcome::Dropped;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.slots[i].stamp = stamp;
            if i != self.head {
                self.unlink(i);
                self.push_front(i);
            }
            return InsertOutcome::Refreshed;
        }
        let (i, outcome) = if self.map.len() == self.capacity {
            // Reuse the LRU slot for the new entry.
            let i = self.tail;
            self.unlink(i);
            let old_key = std::mem::replace(&mut self.slots[i].key, key.clone());
            self.map.remove(&old_key);
            self.slots[i].value = value;
            self.slots[i].stamp = stamp;
            self.evictions += 1;
            (i, InsertOutcome::Evicted(old_key))
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                stamp,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1, InsertOutcome::Stored)
        };
        self.map.insert(key, i);
        self.push_front(i);
        outcome
    }

    /// Walk the live entries most-recently-used first, yielding each
    /// key, value, and age.  TTL-expired entries are skipped (but not
    /// removed — expiry stays lazy on lookup).  Without a TTL every
    /// age reads 0: the no-TTL path never stamps a real clock.
    pub fn export(&self) -> Vec<(K, V, Duration)>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.map.len());
        let now = Instant::now();
        let mut i = self.head;
        while i != NIL {
            let slot = &self.slots[i];
            let age = if self.ttl.is_some() {
                now.saturating_duration_since(slot.stamp)
            } else {
                Duration::ZERO
            };
            if self.ttl.map(|ttl| age < ttl).unwrap_or(true) {
                out.push((slot.key.clone(), slot.value.clone(), age));
            }
            i = slot.next;
        }
        out
    }
}

/// What [`LruCache::insert_reporting`] did with the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome<K> {
    /// New entry stored; the cache grew by one.
    Stored,
    /// Key already present; its value and recency were refreshed.
    Refreshed,
    /// New entry stored by evicting the least-recently-used key.
    Evicted(K),
    /// Capacity is zero; the entry was not stored.
    Dropped,
}

/// Point-in-time counters and occupancy for a [`ShardedCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Inserts that created a new entry (stored or evicted-into).
    pub admitted: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries that aged out past the TTL.
    pub ttl_evictions: u64,
    /// Entries currently stored, summed over shards.
    pub len: usize,
    /// Total configured capacity, summed over shards.
    pub capacity: usize,
    /// The configured TTL in milliseconds, if any.
    pub ttl_ms: Option<u64>,
    /// Entries per shard, in shard order.
    pub per_shard_len: Vec<usize>,
    /// Evictions per shard (capacity + TTL combined), in shard order.
    pub per_shard_evictions: Vec<u64>,
}

impl CacheStats {
    /// Serialize for the `stats` reply.
    pub fn to_json(&self) -> gt_analysis::Json {
        use gt_analysis::Json;
        Json::obj([
            ("shards", Json::from(self.per_shard_len.len() as u64)),
            ("len", Json::from(self.len as u64)),
            ("capacity", Json::from(self.capacity as u64)),
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
            ("admitted", Json::from(self.admitted)),
            ("evictions", Json::from(self.evictions)),
            ("ttl_evictions", Json::from(self.ttl_evictions)),
            (
                "ttl_ms",
                match self.ttl_ms {
                    Some(ms) => Json::from(ms),
                    None => Json::Null,
                },
            ),
            (
                "per_shard_len",
                Json::Array(
                    self.per_shard_len
                        .iter()
                        .map(|&n| Json::from(n as u64))
                        .collect(),
                ),
            ),
            (
                "per_shard_evictions",
                Json::Array(
                    self.per_shard_evictions
                        .iter()
                        .map(|&n| Json::from(n))
                        .collect(),
                ),
            ),
        ])
    }
}

/// An LRU cache split across a power-of-two number of independently
/// locked shards.  Keys are routed by their `DefaultHasher` hash, so
/// hot concurrent traffic spreads its lock contention `1/N`-wise.
///
/// Capacity is divided evenly across shards (rounded up, so the total
/// may slightly exceed the request).  Capacity 0 disables storage in
/// every shard.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    mask: u64,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    admitted: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache holding at most ~`capacity` entries across `shards`
    /// shards, no TTL.  The shard count is rounded up to a power of
    /// two and clamped to at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_ttl(capacity, shards, None)
    }

    /// [`new`](Self::new), with entries also expiring `ttl` after
    /// insertion (checked lazily on lookup).
    pub fn with_ttl(capacity: usize, shards: usize, ttl: Option<Duration>) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::with_ttl(per_shard, ttl)))
                .collect(),
            mask: shards as u64 - 1,
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Look up `key`, promoting it within its shard on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = self.shard(key).lock().unwrap().get(key).cloned();
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert or refresh an entry in its shard.
    pub fn insert(&self, key: K, value: V) {
        let outcome = self
            .shard(&key)
            .lock()
            .unwrap()
            .insert_reporting(key, value);
        match outcome {
            InsertOutcome::Stored => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
            }
            InsertOutcome::Evicted(_) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            InsertOutcome::Refreshed | InsertOutcome::Dropped => {}
        }
    }

    /// [`insert`](Self::insert) for an entry that is already `age`
    /// old — the restore half of snapshot/warm-fill.  Returns whether
    /// the entry was actually stored (an entry past the TTL, or any
    /// entry into a zero-capacity cache, is dropped).
    pub fn insert_aged(&self, key: K, value: V, age: Duration) -> bool {
        let outcome = self
            .shard(&key)
            .lock()
            .unwrap()
            .insert_aged(key, value, age);
        match outcome {
            InsertOutcome::Stored => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                true
            }
            InsertOutcome::Evicted(_) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            InsertOutcome::Refreshed => true,
            InsertOutcome::Dropped => false,
        }
    }

    /// Up to `limit` live entries across all shards,
    /// most-recently-used first within each shard, with their ages.
    /// TTL-expired entries are excluded.  `limit` 0 means no bound.
    /// This is the scan behind `op:"cachepull"` and snapshot writes;
    /// shards are locked one at a time, never all at once.
    pub fn export(&self, limit: usize) -> Vec<(K, V, Duration)> {
        let bound = if limit == 0 { usize::MAX } else { limit };
        let mut out = Vec::new();
        for s in &self.shards {
            if out.len() >= bound {
                break;
            }
            let shard = s.lock().unwrap();
            for entry in shard.export() {
                if out.len() >= bound {
                    break;
                }
                out.push(entry);
            }
        }
        out
    }

    /// Counters plus per-shard occupancy and evictions.  Counters are
    /// read after occupancy under no global lock, so under concurrent
    /// traffic the conservation law
    /// `admitted == len + evictions + ttl_evictions` holds exactly
    /// only at quiescence.
    pub fn stats(&self) -> CacheStats {
        let mut per_shard_len = Vec::with_capacity(self.shards.len());
        let mut per_shard_evictions = Vec::with_capacity(self.shards.len());
        let mut capacity = 0usize;
        let mut ttl_evictions = 0u64;
        for s in &self.shards {
            let s = s.lock().unwrap();
            per_shard_len.push(s.len());
            per_shard_evictions.push(s.evictions() + s.ttl_evictions());
            capacity += s.capacity();
            ttl_evictions += s.ttl_evictions();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ttl_evictions,
            len: per_shard_len.iter().sum(),
            capacity,
            ttl_ms: self.ttl.map(|d| d.as_millis().min(u64::MAX as u128) as u64),
            per_shard_len,
            per_shard_evictions,
        }
    }

    /// Entries currently stored, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" is the LRU entry.
        assert_eq!(c.get(&"a"), Some(&1));
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh value and recency
        c.insert("c", 3); // evicts "b", not "a"
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn capacity_one_churn() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 10);
            assert_eq!(c.get(&i), Some(&(i * 10)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn long_mixed_workload_matches_reference_model() {
        // Cross-check against a brute-force recency list.
        let cap = 8;
        let mut c: LruCache<u32, u32> = LruCache::new(cap);
        let mut model: Vec<(u32, u32)> = Vec::new(); // most recent first
        let mut x: u32 = 12345;
        for step in 0..5000u32 {
            // Cheap xorshift for a deterministic mixed key stream.
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let key = x % 24;
            if x.is_multiple_of(3) {
                let val = step;
                c.insert(key, val);
                if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                    model.remove(pos);
                }
                model.insert(0, (key, val));
                model.truncate(cap);
            } else {
                let got = c.get(&key).copied();
                let want = model.iter().position(|(k, _)| *k == key).map(|pos| {
                    let entry = model.remove(pos);
                    model.insert(0, entry);
                    entry.1
                });
                assert_eq!(got, want, "step {step} key {key}");
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    fn ttl_expires_entries_on_lookup() {
        let mut c = LruCache::with_ttl(4, Some(Duration::from_millis(20)));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(c.get(&"a"), None, "aged entry expires");
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.ttl_evictions(), 2);
        assert_eq!(c.evictions(), 0, "aging is not capacity pressure");
        assert!(c.is_empty());
        // The slab stays consistent after expiry removals.
        c.insert("c", 3);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn ttl_expiry_from_the_middle_keeps_the_slab_consistent() {
        // Expire the first-inserted slot so the last slot is swapped
        // into its index; every surviving entry must stay reachable
        // and the recency list intact.
        let mut c = LruCache::with_ttl(8, Some(Duration::from_millis(25)));
        c.insert("old", 0);
        std::thread::sleep(Duration::from_millis(50));
        for (i, k) in ["w", "x", "y", "z"].iter().enumerate() {
            c.insert(*k, i as u32);
        }
        assert_eq!(c.get(&"old"), None, "slot 0 expires");
        for (i, k) in ["w", "x", "y", "z"].iter().enumerate() {
            assert_eq!(c.get(k), Some(&(i as u32)), "{k} survives the swap");
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.ttl_evictions(), 1);
        // LRU order still works end to end: fill past capacity and
        // check the oldest-by-recency entries fall out.
        for i in 0..8u32 {
            c.insert(Box::leak(format!("k{i}").into_boxed_str()) as &str, i);
        }
        assert_eq!(c.len(), 8);
        assert!(c.evictions() > 0);
    }

    #[test]
    fn refresh_renews_the_ttl_clock() {
        let mut c = LruCache::with_ttl(4, Some(Duration::from_millis(40)));
        c.insert("a", 1);
        std::thread::sleep(Duration::from_millis(25));
        c.insert("a", 2); // refresh restamps
        std::thread::sleep(Duration::from_millis(25));
        // 50ms after first insert but only 25ms after the refresh.
        assert_eq!(c.get(&"a"), Some(&2));
    }

    #[test]
    fn sharded_cache_reports_ttl_telemetry() {
        let c: ShardedCache<u32, u32> =
            ShardedCache::with_ttl(16, 4, Some(Duration::from_millis(15)));
        for k in 0..6u32 {
            c.insert(k, k);
        }
        std::thread::sleep(Duration::from_millis(40));
        for k in 0..6u32 {
            assert_eq!(c.get(&k), None, "key {k} aged out");
        }
        let s = c.stats();
        assert_eq!(s.ttl_evictions, 6);
        assert_eq!(s.misses, 6);
        assert_eq!(s.len, 0);
        assert_eq!(s.ttl_ms, Some(15));
        assert_eq!(s.per_shard_evictions.iter().sum::<u64>(), 6);
        assert_eq!(
            s.admitted,
            s.len as u64 + s.evictions + s.ttl_evictions,
            "conservation law includes TTL expiry"
        );
        let j = s.to_json();
        use gt_analysis::Json;
        assert_eq!(j.get("ttl_evictions").and_then(Json::as_u64), Some(6));
        assert_eq!(j.get("ttl_ms").and_then(Json::as_u64), Some(15));
    }

    #[test]
    fn export_walks_mru_first_and_skips_expired() {
        let mut c = LruCache::with_ttl(8, Some(Duration::from_millis(30)));
        c.insert("stale", 0);
        std::thread::sleep(Duration::from_millis(50));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // promote a to MRU
        let entries = c.export();
        let keys: Vec<&str> = entries.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec!["a", "b"], "MRU first, expired skipped");
        for (_, _, age) in &entries {
            assert!(*age < Duration::from_millis(30));
        }
        // Export is read-only: the expired entry still expires lazily.
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&"stale"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_aged_backdates_the_ttl_clock() {
        let mut c = LruCache::with_ttl(8, Some(Duration::from_millis(60)));
        // Already past the TTL: dropped, counted as a TTL eviction.
        assert_eq!(
            c.insert_aged("dead", 0, Duration::from_millis(120)),
            InsertOutcome::Dropped
        );
        assert_eq!(c.ttl_evictions(), 1);
        assert!(c.is_empty());
        // Backdated by 40ms of a 60ms TTL: expires ~20ms from now.
        c.insert_aged("old", 1, Duration::from_millis(40));
        assert_eq!(c.get(&"old"), Some(&1));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(c.get(&"old"), None, "backdated entry ages out early");
    }

    #[test]
    fn sharded_export_restore_round_trips() {
        let a: ShardedCache<u32, u32> = ShardedCache::with_ttl(64, 4, None);
        for k in 0..20u32 {
            a.insert(k, k * 7);
        }
        let dump = a.export(0);
        assert_eq!(dump.len(), 20);
        assert!(a.export(5).len() == 5, "limit bounds the scan");
        let b: ShardedCache<u32, u32> = ShardedCache::with_ttl(64, 4, None);
        for (k, v, age) in dump {
            assert!(b.insert_aged(k, v, age));
        }
        for k in 0..20u32 {
            assert_eq!(b.get(&k), Some(k * 7));
        }
    }

    #[test]
    fn sharded_cache_rounds_shards_to_a_power_of_two() {
        assert_eq!(ShardedCache::<u32, u32>::new(64, 1).shard_count(), 1);
        assert_eq!(ShardedCache::<u32, u32>::new(64, 3).shard_count(), 4);
        assert_eq!(ShardedCache::<u32, u32>::new(64, 8).shard_count(), 8);
        assert_eq!(ShardedCache::<u32, u32>::new(64, 0).shard_count(), 1);
    }

    #[test]
    fn sharded_cache_basic_hits_and_misses() {
        let c: ShardedCache<&str, u32> = ShardedCache::new(16, 4);
        assert_eq!(c.get(&"a"), None);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), Some(2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.admitted, s.evictions), (2, 1, 2, 0));
        assert_eq!(s.len, 2);
        assert_eq!(s.per_shard_len.len(), 4);
        assert_eq!(s.per_shard_len.iter().sum::<usize>(), 2);
    }

    #[test]
    fn sharded_cache_capacity_zero_disables_storage() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(0, 4);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!((s.admitted, s.len, s.capacity), (0, 0, 0));
    }

    #[test]
    fn sharded_cache_concurrent_hammer_accounts_exactly() {
        use std::sync::Arc;

        let cap = 64;
        let threads = 8;
        let ops_per_thread = 4000u32;
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(cap, 8));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut gets = 0u64;
                    let mut x: u32 = 0x9e37 + t;
                    for _ in 0..ops_per_thread {
                        x ^= x << 13;
                        x ^= x >> 17;
                        x ^= x << 5;
                        // Key space ~3x capacity so evictions churn.
                        let key = x % 200;
                        if x.is_multiple_of(3) {
                            cache.insert(key, key * 2);
                        } else {
                            if let Some(v) = cache.get(&key) {
                                assert_eq!(v, key * 2, "value integrity under concurrency");
                            }
                            gets += 1;
                        }
                    }
                    gets
                })
            })
            .collect();
        let total_gets: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

        let s = cache.stats();
        assert_eq!(s.hits + s.misses, total_gets, "every lookup counted once");
        assert_eq!(
            s.admitted,
            s.len as u64 + s.evictions,
            "every admitted entry is either still stored or was evicted"
        );
        assert_eq!(s.len, s.per_shard_len.iter().sum::<usize>());
        assert!(s.len <= s.capacity);
        for (i, occ) in s.per_shard_len.iter().enumerate() {
            assert!(*occ <= s.capacity / 8, "shard {i} over its slice");
        }
        assert!(s.evictions > 0, "key space exceeds capacity, must evict");
        assert!(s.hits > 0, "hot keys must repeat");
    }
}
