//! A plain-std LRU cache: `HashMap` index over an intrusive
//! doubly-linked recency list stored in a slab.
//!
//! `get` and `insert` are O(1); eviction removes the least-recently
//! used entry.  The serving layer keys this by the canonical
//! spec+algorithm string so a repeated request costs a hash lookup
//! instead of a tree evaluation.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.  Capacity 0 disables
/// storage entirely (every lookup misses, inserts are dropped).
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Insert or refresh an entry, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if i != self.head {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.map.len() == self.capacity {
            // Reuse the LRU slot for the new entry.
            let i = self.tail;
            self.unlink(i);
            let old_key = std::mem::replace(&mut self.slots[i].key, key.clone());
            self.map.remove(&old_key);
            self.slots[i].value = value;
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" is the LRU entry.
        assert_eq!(c.get(&"a"), Some(&1));
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh value and recency
        c.insert("c", 3); // evicts "b", not "a"
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn capacity_one_churn() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 10);
            assert_eq!(c.get(&i), Some(&(i * 10)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn long_mixed_workload_matches_reference_model() {
        // Cross-check against a brute-force recency list.
        let cap = 8;
        let mut c: LruCache<u32, u32> = LruCache::new(cap);
        let mut model: Vec<(u32, u32)> = Vec::new(); // most recent first
        let mut x: u32 = 12345;
        for step in 0..5000u32 {
            // Cheap xorshift for a deterministic mixed key stream.
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let key = x % 24;
            if x.is_multiple_of(3) {
                let val = step;
                c.insert(key, val);
                if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                    model.remove(pos);
                }
                model.insert(0, (key, val));
                model.truncate(cap);
            } else {
                let got = c.get(&key).copied();
                let want = model.iter().position(|(k, _)| *k == key).map(|pos| {
                    let entry = model.remove(pos);
                    model.insert(0, entry);
                    entry.1
                });
                assert_eq!(got, want, "step {step} key {key}");
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
