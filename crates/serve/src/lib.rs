//! # gt-serve — a batching, backpressure-aware game-tree evaluation service
//!
//! Everything before this crate was a one-shot process: generate a
//! workload, evaluate it, print, exit.  `gt-serve` turns the Karp–Zhang
//! engines into a long-lived network service, the hot path every
//! scaling and robustness PR can target:
//!
//! * **Wire protocol** ([`protocol`]) — newline-delimited JSON over
//!   TCP.  A request names a workload with the `gt_tree::spec::GenSpec`
//!   string format (`worst:d=2,n=10`) plus an algorithm selector
//!   (`cascade:w=2`, `round:w=1`, `seq-solve`, …); the reply carries
//!   the root value, work/step metrics, and server-side latency.
//!   Requests on one connection may be **pipelined**: the server reads
//!   continuously, evaluates concurrently (bounded per connection),
//!   and replies out of order, correlated by the echoed `id`.
//! * **Readiness-driven connection handling** ([`io`], [`server`]) —
//!   a fixed pool of `--io-threads` event-loop threads (epoll on
//!   Linux, poll elsewhere) multiplexes every connection: incremental
//!   line parsing with pooled carry buffers, bounded per-connection
//!   outbound queues drained by vectored writes, an idle sweep that
//!   closes dribbling connections, and a self-pipe waker for replies
//!   settled on other threads.  No thread per connection: the thread
//!   census at 10 000 open connections equals the census at ten.
//! * **Shared evaluation executor** ([`executor`]) — a fixed pool of
//!   evaluation workers fed by per-algorithm queues, so total engine
//!   concurrency is `--eval-workers` no matter how many connections
//!   are open.  Cheap jobs (estimated cost below a threshold) are
//!   micro-batched across keys into one dispatch; big jobs get a
//!   dedicated dispatch; submissions past the bounded depth are shed
//!   with a 429-style `busy` error instead of growing a backlog.
//! * **Deadlines without parked threads** ([`server`]) — per-request
//!   deadlines live in a single reaper thread's min-heap and drive the
//!   engines' cooperative cancellation
//!   (`gt_core::engine::Cancelled`); an expired request gets a timely
//!   `timeout` reply even while its abandoned work winds down.
//! * **Sharded LRU result cache** ([`cache`]) — keyed by the canonical
//!   spec+algorithm string and spread across independently locked
//!   shards, so repeated requests are O(1) and concurrent traffic
//!   does not serialize on one cache lock.
//! * **Single-flight coalescing** ([`singleflight`]) — concurrent
//!   requests for the same canonical key share one engine run; the
//!   duplicates wait on the leader's flight instead of occupying
//!   queue slots.
//! * **Metrics registry** ([`metrics`]) — request/reject/timeout/cache
//!   counters, a log-bucketed latency histogram, and per-algorithm
//!   stage histograms with aggregated engine work counters, exposed
//!   via a `stats` request and dumped as JSON on shutdown.
//! * **Tracing and exposition** ([`trace`]) — every request is stamped
//!   through recv → parse → probe → enqueue → dispatch → engine →
//!   write; a bounded flight recorder retains recent and notable
//!   (slow/shed/timed-out) traces for the `trace` request, and a
//!   minimal HTTP listener serves the whole registry as Prometheus
//!   text exposition on `--metrics-addr` (see `docs/OBSERVABILITY.md`).
//! * **Load generator** ([`loadgen`]) — open- and closed-loop client
//!   fleets, optionally pipelined, so throughput and tail latency are
//!   measurable in-repo.
//!
//! The crate is std-only: threads, `std::net`, and `std::sync::mpsc` —
//! no async runtime, no serialization dependency (JSON I/O rides on
//! `gt_analysis::json`).
//!
//! ## Quick start
//!
//! ```no_run
//! use gt_serve::{Client, Config, Server};
//!
//! let server = Server::start(Config {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 4,
//!     ..Config::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.eval("worst:d=2,n=8", "cascade:w=1", None).unwrap();
//! assert!(reply.ok);
//! server.request_shutdown();
//! let stats = server.join();
//! assert_eq!(stats.ok, 1);
//! ```

pub mod cache;
pub mod client;
pub mod executor;
pub mod io;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod singleflight;
pub mod snapshot;
pub mod trace;
pub mod workload;

pub use cache::{CacheStats, LruCache, ShardedCache};
pub use client::Client;
pub use executor::{
    CostClass, Executor, ExecutorConfig, Scheduler, SubmitError, TenantGovernor, TenantScheduler,
};
pub use io::{BufferPool, LineAction, LineReader, Poller, Waker};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, TenantReport};
pub use metrics::{Metrics, MetricsSnapshot};
pub use protocol::{ErrorCode, Op, Request, Response};
pub use server::{Config, Server};
pub use singleflight::{Flight, FlightResult, FlightTable, Joined};
pub use trace::{FlightRecorder, MetricsListener, StageStamps, TraceRecord};
pub use workload::{estimated_cost, AlgoSpec, EvalOutcome};
