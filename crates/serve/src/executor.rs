//! The shared evaluation executor: a fixed pool of workers fed by
//! per-algorithm queues with a small/large priority split and
//! cross-key micro-batching of small jobs.
//!
//! Before this module, every cache miss spawned a detached request
//! thread, so total engine concurrency was `connections × window` —
//! unbounded in the number of clients.  The executor inverts that:
//! readers *submit* jobs and return to their socket immediately, and a
//! fixed set of evaluation workers (the only threads that ever run an
//! engine) pull work off a shared [`Scheduler`].  Engine concurrency
//! is exactly `workers`, no matter how many connections are open.
//!
//! ## Scheduling discipline
//!
//! Jobs are keyed by algorithm and classified by estimated cost
//! ([`CostClass`]):
//!
//! * **Small** jobs — cheap, deterministic specs whose per-job
//!   dispatch overhead (queue handoff, rayon pool entry, allocator
//!   traffic, cache/single-flight bookkeeping) rivals their actual
//!   evaluation cost.  A worker drains up to `batch_max` of them from
//!   one algorithm's queue in a single dispatch and evaluates the
//!   whole batch back-to-back on its own thread, amortizing that
//!   overhead across the batch.  The batch crosses cache keys but
//!   never priority classes.
//! * **Large** jobs — everything else.  One job per dispatch, so a
//!   long engine run occupies exactly one worker and its cooperative
//!   cancellation flag stays per-flight.
//!
//! `pop` serves small work first (across all algorithms, round-robin
//! between their queues so no algorithm starves another) and falls
//! back to large jobs only when no small work is queued.  This is the
//! serving-layer analogue of the paper's processor-per-level machine
//! (Section 7): many cheap units of work share one processor bank,
//! while expensive subtree evaluations get dedicated processors.
//!
//! The queue is bounded *globally* (`queue_depth`); a submit past the
//! bound fails fast so the server can shed with `busy` instead of
//! building an invisible backlog.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// Cost class of one job, decided before it enters the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Cheap enough that dispatch overhead matters: batchable.
    Small,
    /// Runs long enough to deserve a dedicated worker.
    Large,
}

impl CostClass {
    /// Classify by estimated cost (e.g. leaf count) against the
    /// configured threshold.
    pub fn classify(estimated_cost: u64, small_cost_max: u64) -> CostClass {
        if estimated_cost <= small_cost_max {
            CostClass::Small
        } else {
            CostClass::Large
        }
    }
}

struct AlgoQueue<J> {
    small: VecDeque<J>,
    large: VecDeque<J>,
}

impl<J> AlgoQueue<J> {
    fn new() -> Self {
        AlgoQueue {
            small: VecDeque::new(),
            large: VecDeque::new(),
        }
    }
}

/// The executor's queue discipline, free of threads and locks so it
/// can be property-tested and benchmarked directly.
///
/// Holds one [`AlgoQueue`] per algorithm name, each split into a
/// small (batchable) and a large band.  Total occupancy is bounded by
/// `capacity` across all queues.
pub struct Scheduler<J> {
    queues: Vec<AlgoQueue<J>>,
    index: HashMap<String, usize>,
    /// Round-robin cursor over `queues`.
    cursor: usize,
    len: usize,
    capacity: usize,
}

impl<J> Scheduler<J> {
    /// A scheduler admitting at most `capacity` queued jobs (clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> Self {
        Scheduler {
            queues: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            len: 0,
            capacity: capacity.max(1),
        }
    }

    /// Queued jobs across all algorithms and classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured global bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue `job` on `algo`'s queue in its class band; returns the
    /// job when the global bound is reached.
    pub fn push(&mut self, algo: &str, class: CostClass, job: J) -> Result<(), J> {
        if self.len >= self.capacity {
            return Err(job);
        }
        let qi = match self.index.get(algo) {
            Some(&qi) => qi,
            None => {
                let qi = self.queues.len();
                self.queues.push(AlgoQueue::new());
                self.index.insert(algo.to_string(), qi);
                qi
            }
        };
        match class {
            CostClass::Small => self.queues[qi].small.push_back(job),
            CostClass::Large => self.queues[qi].large.push_back(job),
        }
        self.len += 1;
        Ok(())
    }

    /// Dequeue the next dispatch: up to `batch_max` small jobs from
    /// one algorithm's queue, or a single large job when no small
    /// work is queued anywhere.  Within one `(algorithm, class)` band
    /// jobs leave in arrival order; the round-robin cursor rotates
    /// between algorithms so none starves.
    pub fn pop_batch(&mut self, batch_max: usize) -> Vec<J> {
        let n = self.queues.len();
        if n == 0 || self.len == 0 {
            return Vec::new();
        }
        let batch_max = batch_max.max(1);
        // First pass: small work anywhere wins.
        for step in 0..n {
            let qi = (self.cursor + step) % n;
            if !self.queues[qi].small.is_empty() {
                self.cursor = (qi + 1) % n;
                let take = self.queues[qi].small.len().min(batch_max);
                let batch: Vec<J> = self.queues[qi].small.drain(..take).collect();
                self.len -= batch.len();
                return batch;
            }
        }
        // No small work: one large job, dedicated dispatch.
        for step in 0..n {
            let qi = (self.cursor + step) % n;
            if let Some(job) = self.queues[qi].large.pop_front() {
                self.cursor = (qi + 1) % n;
                self.len -= 1;
                return vec![job];
            }
        }
        Vec::new()
    }
}

/// Effective small-batch cap for the current backlog: spread the
/// queued jobs evenly across the worker pool instead of always filling
/// a dispatch to `batch_max`.
///
/// An idle server (one queued job, several free workers) dispatches a
/// batch of 1, so a lone request never waits behind batch assembly;
/// only when the backlog exceeds `workers × batch_max` does every
/// dispatch fill to the configured cap.  Monotone in `queued`, clamped
/// to `1..=batch_max`.
pub fn adaptive_batch_cap(queued: usize, workers: usize, batch_max: usize) -> usize {
    let per_worker = queued.div_ceil(workers.max(1));
    per_worker.clamp(1, batch_max.max(1))
}

/// Occupancy gauge for the worker pool: how many workers are inside a
/// dispatch right now.  The dispatch closure enters on arrival and
/// leaves on return (RAII), so a worker deciding how many threads to
/// grant a large parallel job can ask for the pool's current idleness
/// without any reference back into the executor.
///
/// The grant is *advisory* sizing, not a thread reservation: the
/// work-stealing engine spawns its own scoped threads for the
/// evaluation and joins them before the dispatch returns, so the pool
/// never loses a worker.  Sizing by idleness keeps a saturated pool at
/// one thread per evaluation (exactly the pre-grant behaviour) while
/// an idle pool lends its spare parallelism to the one big job.
pub struct ActiveGauge {
    workers: usize,
    active: AtomicUsize,
}

impl ActiveGauge {
    /// A gauge over a pool of `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> ActiveGauge {
        ActiveGauge {
            workers: workers.max(1),
            active: AtomicUsize::new(0),
        }
    }

    /// Mark one worker busy until the guard drops.
    pub fn enter(&self) -> ActiveGuard<'_> {
        self.active.fetch_add(1, Ordering::Relaxed);
        ActiveGuard { gauge: self }
    }

    /// Workers currently inside a dispatch.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Workers not inside a dispatch.
    pub fn idle(&self) -> usize {
        self.workers.saturating_sub(self.active())
    }

    /// Thread grant for a large job running on a worker that has
    /// already [`enter`](Self::enter)ed: itself plus every currently
    /// idle worker, capped at `par_max_workers` and never below 1.
    pub fn par_grant(&self, par_max_workers: u32) -> u32 {
        let available = (self.idle() + 1).min(u32::MAX as usize) as u32;
        available.min(par_max_workers.max(1))
    }
}

/// RAII handle from [`ActiveGauge::enter`].
pub struct ActiveGuard<'a> {
    gauge: &'a ActiveGauge,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.gauge.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The global queue bound is reached; shed the request.
    Full,
    /// The executor is shutting down.
    Closed,
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Evaluation worker threads (clamped to at least 1).
    pub workers: usize,
    /// Global queue bound across all algorithm queues.
    pub queue_depth: usize,
    /// Most small jobs evaluated per dispatch.
    pub batch_max: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 2,
            queue_depth: 64,
            batch_max: 16,
        }
    }
}

struct Core<J> {
    sched: Scheduler<J>,
    closed: bool,
}

struct ExecutorShared<J> {
    core: Mutex<Core<J>>,
    cv: Condvar,
    batch_max: usize,
    workers: usize,
}

/// A fixed pool of evaluation workers over a shared [`Scheduler`].
///
/// Generic over the job type and the dispatch function so the serving
/// layer, the unit tests, and the criterion bench can all drive it;
/// `run` receives each popped batch on a worker thread.
pub struct Executor<J: Send + 'static> {
    shared: Arc<ExecutorShared<J>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<J: Send + 'static> Executor<J> {
    /// Start `config.workers` worker threads dispatching batches to
    /// `run`.
    pub fn start<F>(config: ExecutorConfig, run: F) -> Executor<J>
    where
        F: Fn(Vec<J>) + Send + Sync + 'static,
    {
        let shared = Arc::new(ExecutorShared {
            core: Mutex::new(Core {
                sched: Scheduler::new(config.queue_depth),
                closed: false,
            }),
            cv: Condvar::new(),
            batch_max: config.batch_max.max(1),
            workers: config.workers.max(1),
        });
        let run = Arc::new(run);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                thread::spawn(move || worker_loop(&shared, run.as_ref()))
            })
            .collect();
        Executor {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit one job; fails fast when the queue is at its bound or
    /// the executor is closed.
    pub fn submit(&self, algo: &str, class: CostClass, job: J) -> Result<(), SubmitError> {
        let mut core = self.shared.core.lock().unwrap();
        if core.closed {
            return Err(SubmitError::Closed);
        }
        core.sched
            .push(algo, class, job)
            .map_err(|_| SubmitError::Full)?;
        drop(core);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not yet popped by a worker).
    pub fn queued(&self) -> usize {
        self.shared.core.lock().unwrap().sched.len()
    }

    /// Close the queue and reap every worker.  Jobs still queued are
    /// dropped, not run: by shutdown time their waiters have already
    /// been answered (drained windows or expired deadlines), so
    /// running them would only delay the exit.
    pub fn shutdown(&self) {
        {
            let mut core = self.shared.core.lock().unwrap();
            core.closed = true;
        }
        self.shared.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop<J, F>(shared: &ExecutorShared<J>, run: &F)
where
    F: Fn(Vec<J>),
{
    loop {
        let batch = {
            let mut core = shared.core.lock().unwrap();
            loop {
                if core.closed {
                    return;
                }
                if !core.sched.is_empty() {
                    let cap =
                        adaptive_batch_cap(core.sched.len(), shared.workers, shared.batch_max);
                    break core.sched.pop_batch(cap);
                }
                core = shared.cv.wait(core).unwrap();
            }
        };
        if !batch.is_empty() {
            run(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn classify_splits_on_the_threshold() {
        assert_eq!(CostClass::classify(100, 100), CostClass::Small);
        assert_eq!(CostClass::classify(101, 100), CostClass::Large);
        assert_eq!(CostClass::classify(0, 0), CostClass::Small);
    }

    #[test]
    fn scheduler_is_fifo_within_a_band() {
        let mut s = Scheduler::new(16);
        for i in 0..5 {
            s.push("a", CostClass::Small, i).unwrap();
        }
        assert_eq!(s.pop_batch(16), vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn scheduler_batches_at_most_batch_max() {
        let mut s = Scheduler::new(64);
        for i in 0..10 {
            s.push("a", CostClass::Small, i).unwrap();
        }
        assert_eq!(s.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(s.pop_batch(4), vec![4, 5, 6, 7]);
        assert_eq!(s.pop_batch(4), vec![8, 9]);
    }

    #[test]
    fn small_jobs_preempt_large_ones_across_algorithms() {
        let mut s = Scheduler::new(16);
        s.push("big", CostClass::Large, 100).unwrap();
        s.push("tiny", CostClass::Small, 1).unwrap();
        s.push("tiny", CostClass::Small, 2).unwrap();
        // Small band drains first even though the large job arrived
        // earlier on a different queue.
        assert_eq!(s.pop_batch(8), vec![1, 2]);
        assert_eq!(s.pop_batch(8), vec![100]);
    }

    #[test]
    fn large_jobs_pop_one_at_a_time() {
        let mut s = Scheduler::new(16);
        s.push("a", CostClass::Large, 1).unwrap();
        s.push("a", CostClass::Large, 2).unwrap();
        assert_eq!(s.pop_batch(8), vec![1]);
        assert_eq!(s.pop_batch(8), vec![2]);
    }

    #[test]
    fn round_robin_rotates_between_algorithm_queues() {
        let mut s = Scheduler::new(64);
        for i in 0..3 {
            s.push("a", CostClass::Small, 10 + i).unwrap();
            s.push("b", CostClass::Small, 20 + i).unwrap();
        }
        // Alternating dispatches: neither algorithm starves.
        assert_eq!(s.pop_batch(2), vec![10, 11]);
        assert_eq!(s.pop_batch(2), vec![20, 21]);
        assert_eq!(s.pop_batch(2), vec![12]);
        assert_eq!(s.pop_batch(2), vec![22]);
    }

    #[test]
    fn capacity_bounds_the_whole_scheduler() {
        let mut s = Scheduler::new(2);
        s.push("a", CostClass::Small, 1).unwrap();
        s.push("b", CostClass::Large, 2).unwrap();
        assert_eq!(s.push("c", CostClass::Small, 3), Err(3));
        let _ = s.pop_batch(8);
        assert!(s.push("c", CostClass::Small, 3).is_ok());
    }

    #[test]
    fn adaptive_cap_scales_with_backlog() {
        // Idle: a lone job dispatches alone, no batch-wait added.
        assert_eq!(adaptive_batch_cap(1, 2, 16), 1);
        assert_eq!(adaptive_batch_cap(0, 2, 16), 1);
        // Light backlog: batches stay proportional to depth.
        assert_eq!(adaptive_batch_cap(4, 2, 16), 2);
        assert_eq!(adaptive_batch_cap(5, 2, 16), 3);
        // Saturated: the configured cap is the ceiling.
        assert_eq!(adaptive_batch_cap(64, 2, 16), 16);
        assert_eq!(adaptive_batch_cap(1_000_000, 2, 16), 16);
        // Degenerate knobs are clamped, never zero or a panic.
        assert_eq!(adaptive_batch_cap(10, 0, 0), 1);
        // Monotone in queue depth.
        let caps: Vec<usize> = (0..200).map(|q| adaptive_batch_cap(q, 3, 8)).collect();
        assert!(caps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn active_gauge_counts_and_grants() {
        let g = ActiveGauge::new(4);
        assert_eq!(g.idle(), 4);
        // An idle pool grants the caller plus every idle worker,
        // capped by par_max_workers.
        let a = g.enter();
        assert_eq!(g.active(), 1);
        assert_eq!(g.par_grant(8), 4); // self + 3 idle
        assert_eq!(g.par_grant(2), 2); // cap wins
        let b = g.enter();
        let c = g.enter();
        assert_eq!(g.par_grant(8), 2); // self + 1 idle
        drop(b);
        assert_eq!(g.par_grant(8), 3);
        drop(a);
        drop(c);
        assert_eq!(g.active(), 0);
        // A saturated (or over-subscribed) pool degrades to 1.
        let g = ActiveGauge::new(1);
        let _a = g.enter();
        assert_eq!(g.par_grant(8), 1);
        assert_eq!(g.par_grant(0), 1); // degenerate cap clamps up
    }

    #[test]
    fn executor_runs_every_submitted_job() {
        let total = Arc::new(AtomicUsize::new(0));
        let batches = Arc::new(AtomicUsize::new(0));
        let exec: Executor<usize> = Executor::start(
            ExecutorConfig {
                workers: 3,
                queue_depth: 256,
                batch_max: 8,
            },
            {
                let total = Arc::clone(&total);
                let batches = Arc::clone(&batches);
                move |batch| {
                    batches.fetch_add(1, Ordering::SeqCst);
                    total.fetch_add(batch.iter().sum::<usize>(), Ordering::SeqCst);
                }
            },
        );
        let mut want = 0usize;
        for i in 1..=100usize {
            let class = if i % 10 == 0 {
                CostClass::Large
            } else {
                CostClass::Small
            };
            // Submit with retry: workers drain concurrently.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match exec.submit("algo", class, i) {
                    Ok(()) => break,
                    Err(SubmitError::Full) if Instant::now() < deadline => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("submit failed: {e:?}"),
                }
            }
            want += i;
        }
        // Wait for the queue to drain, then shut down.
        let deadline = Instant::now() + Duration::from_secs(10);
        while total.load(Ordering::SeqCst) < want && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        exec.shutdown();
        assert_eq!(total.load(Ordering::SeqCst), want);
        assert!(
            batches.load(Ordering::SeqCst) >= 10,
            "large jobs alone force ≥10 dispatches"
        );
        assert_eq!(
            exec.submit("algo", CostClass::Small, 1),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn shed_when_full_then_closed_when_shut_down() {
        // One worker blocked forever on a sentinel lets the queue fill.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let exec: Executor<u32> = Executor::start(
            ExecutorConfig {
                workers: 1,
                queue_depth: 1,
                batch_max: 1,
            },
            move |_| {
                let _ = gate_rx.lock().unwrap().recv();
            },
        );
        // First job occupies the worker; second fills the queue.
        exec.submit("a", CostClass::Large, 0).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while exec.queued() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        exec.submit("a", CostClass::Large, 1).unwrap();
        assert_eq!(
            exec.submit("a", CostClass::Large, 2),
            Err(SubmitError::Full)
        );
        drop(gate_tx); // unblock the worker
        exec.shutdown();
        assert_eq!(
            exec.submit("a", CostClass::Large, 3),
            Err(SubmitError::Closed)
        );
    }
}
