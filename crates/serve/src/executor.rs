//! The shared evaluation executor: a fixed pool of workers fed by
//! per-algorithm queues with a small/large priority split and
//! cross-key micro-batching of small jobs.
//!
//! Before this module, every cache miss spawned a detached request
//! thread, so total engine concurrency was `connections × window` —
//! unbounded in the number of clients.  The executor inverts that:
//! readers *submit* jobs and return to their socket immediately, and a
//! fixed set of evaluation workers (the only threads that ever run an
//! engine) pull work off a shared [`Scheduler`].  Engine concurrency
//! is exactly `workers`, no matter how many connections are open.
//!
//! ## Scheduling discipline
//!
//! Jobs are keyed by algorithm and classified by estimated cost
//! ([`CostClass`]):
//!
//! * **Small** jobs — cheap, deterministic specs whose per-job
//!   dispatch overhead (queue handoff, rayon pool entry, allocator
//!   traffic, cache/single-flight bookkeeping) rivals their actual
//!   evaluation cost.  A worker drains up to `batch_max` of them from
//!   one algorithm's queue in a single dispatch and evaluates the
//!   whole batch back-to-back on its own thread, amortizing that
//!   overhead across the batch.  The batch crosses cache keys but
//!   never priority classes.
//! * **Large** jobs — everything else.  One job per dispatch, so a
//!   long engine run occupies exactly one worker and its cooperative
//!   cancellation flag stays per-flight.
//!
//! `pop` serves small work first (across all algorithms, round-robin
//! between their queues so no algorithm starves another) and falls
//! back to large jobs only when no small work is queued.  This is the
//! serving-layer analogue of the paper's processor-per-level machine
//! (Section 7): many cheap units of work share one processor bank,
//! while expensive subtree evaluations get dedicated processors.
//!
//! The queue is bounded *globally* (`queue_depth`); a submit past the
//! bound fails fast so the server can shed with `busy` instead of
//! building an invisible backlog.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// Cost class of one job, decided before it enters the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Cheap enough that dispatch overhead matters: batchable.
    Small,
    /// Runs long enough to deserve a dedicated worker.
    Large,
}

impl CostClass {
    /// Classify by estimated cost (e.g. leaf count) against the
    /// configured threshold.
    pub fn classify(estimated_cost: u64, small_cost_max: u64) -> CostClass {
        if estimated_cost <= small_cost_max {
            CostClass::Small
        } else {
            CostClass::Large
        }
    }
}

struct AlgoQueue<J> {
    small: VecDeque<J>,
    large: VecDeque<J>,
}

impl<J> AlgoQueue<J> {
    fn new() -> Self {
        AlgoQueue {
            small: VecDeque::new(),
            large: VecDeque::new(),
        }
    }
}

/// The executor's queue discipline, free of threads and locks so it
/// can be property-tested and benchmarked directly.
///
/// Holds one [`AlgoQueue`] per algorithm name, each split into a
/// small (batchable) and a large band.  Total occupancy is bounded by
/// `capacity` across all queues.
pub struct Scheduler<J> {
    queues: Vec<AlgoQueue<J>>,
    index: HashMap<String, usize>,
    /// Round-robin cursor over `queues`.
    cursor: usize,
    len: usize,
    capacity: usize,
}

impl<J> Scheduler<J> {
    /// A scheduler admitting at most `capacity` queued jobs (clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> Self {
        Scheduler {
            queues: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            len: 0,
            capacity: capacity.max(1),
        }
    }

    /// Queued jobs across all algorithms and classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured global bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue `job` on `algo`'s queue in its class band; returns the
    /// job when the global bound is reached.
    pub fn push(&mut self, algo: &str, class: CostClass, job: J) -> Result<(), J> {
        if self.len >= self.capacity {
            return Err(job);
        }
        let qi = match self.index.get(algo) {
            Some(&qi) => qi,
            None => {
                let qi = self.queues.len();
                self.queues.push(AlgoQueue::new());
                self.index.insert(algo.to_string(), qi);
                qi
            }
        };
        match class {
            CostClass::Small => self.queues[qi].small.push_back(job),
            CostClass::Large => self.queues[qi].large.push_back(job),
        }
        self.len += 1;
        Ok(())
    }

    /// Dequeue the next dispatch: up to `batch_max` small jobs from
    /// one algorithm's queue, or a single large job when no small
    /// work is queued anywhere.  Within one `(algorithm, class)` band
    /// jobs leave in arrival order; the round-robin cursor rotates
    /// between algorithms so none starves.
    pub fn pop_batch(&mut self, batch_max: usize) -> Vec<J> {
        let n = self.queues.len();
        if n == 0 || self.len == 0 {
            return Vec::new();
        }
        let batch_max = batch_max.max(1);
        // First pass: small work anywhere wins.
        for step in 0..n {
            let qi = (self.cursor + step) % n;
            if !self.queues[qi].small.is_empty() {
                self.cursor = (qi + 1) % n;
                let take = self.queues[qi].small.len().min(batch_max);
                let batch: Vec<J> = self.queues[qi].small.drain(..take).collect();
                self.len -= batch.len();
                return batch;
            }
        }
        // No small work: one large job, dedicated dispatch.
        for step in 0..n {
            let qi = (self.cursor + step) % n;
            if let Some(job) = self.queues[qi].large.pop_front() {
                self.cursor = (qi + 1) % n;
                self.len -= 1;
                return vec![job];
            }
        }
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Per-tenant fairness: deficit round-robin over tenant lanes.
// ---------------------------------------------------------------------------

/// One tenant's lane: its own [`Scheduler`] (so the small/large and
/// per-algorithm disciplines hold *within* the tenant) plus its DRR
/// deficit.
struct TenantLane<J> {
    sched: Scheduler<J>,
    /// Jobs this lane may still dispatch in its current turn.
    deficit: u64,
}

/// Deficit-round-robin across per-tenant lanes, layered over the
/// per-algorithm [`Scheduler`] discipline.
///
/// Every submitted job carries a tenant id (the anonymous tenant `""`
/// is a lane like any other).  A lane with queued work is visited in
/// round-robin order and granted a `quantum` of dispatch credit; each
/// dispatch costs the number of jobs it pops, and the cursor only
/// moves on when the lane's credit is spent or its queue drains.  A
/// tenant flooding the queue therefore cannot starve another: each
/// nonempty lane dispatches ~`quantum` jobs per cycle regardless of
/// how deep any one lane's backlog is.
///
/// The cost unit is *jobs dispatched*, not engine time — a large job
/// costs one unit just like a small one.  Runtime skew from expensive
/// jobs is bounded separately, by the per-tenant inflight cap
/// ([`TenantGovernor`]) and the router's deadline machinery.
///
/// Capacity is global across lanes, same contract as [`Scheduler`]:
/// a push past the bound fails fast so the server sheds instead of
/// building invisible backlog.
pub struct TenantScheduler<J> {
    lanes: Vec<TenantLane<J>>,
    index: HashMap<String, usize>,
    /// Round-robin cursor over `lanes`.
    cursor: usize,
    len: usize,
    capacity: usize,
    quantum: u64,
}

impl<J> TenantScheduler<J> {
    /// A scheduler admitting at most `capacity` queued jobs across
    /// all tenants, granting `quantum` jobs of credit per DRR turn
    /// (both clamped to at least 1).
    pub fn new(capacity: usize, quantum: u64) -> Self {
        TenantScheduler {
            lanes: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            len: 0,
            capacity: capacity.max(1),
            quantum: quantum.max(1),
        }
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured global bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs queued for one tenant.
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.index
            .get(tenant)
            .map_or(0, |&ti| self.lanes[ti].sched.len())
    }

    /// Enqueue `job` for `tenant` on `algo`'s queue in its class
    /// band; returns the job when the global bound is reached.
    pub fn push(&mut self, tenant: &str, algo: &str, class: CostClass, job: J) -> Result<(), J> {
        if self.len >= self.capacity {
            return Err(job);
        }
        let ti = match self.index.get(tenant) {
            Some(&ti) => ti,
            None => {
                let ti = self.lanes.len();
                self.lanes.push(TenantLane {
                    // The global bound is enforced here, so the inner
                    // scheduler's own bound must never bind first.
                    sched: Scheduler::new(self.capacity),
                    deficit: 0,
                });
                self.index.insert(tenant.to_string(), ti);
                ti
            }
        };
        self.lanes[ti].sched.push(algo, class, job)?;
        self.len += 1;
        Ok(())
    }

    /// Dequeue the next dispatch from the lane whose DRR turn it is:
    /// up to `batch_max` jobs (further capped by the lane's remaining
    /// credit), chosen by the lane's own small/large discipline.  An
    /// empty lane forfeits its credit and its turn.
    pub fn pop_batch(&mut self, batch_max: usize) -> Vec<J> {
        let n = self.lanes.len();
        if n == 0 || self.len == 0 {
            return Vec::new();
        }
        for step in 0..n {
            let ti = (self.cursor + step) % n;
            if self.lanes[ti].sched.is_empty() {
                self.lanes[ti].deficit = 0;
                continue;
            }
            let quantum = self.quantum;
            let lane = &mut self.lanes[ti];
            if lane.deficit == 0 {
                lane.deficit = quantum;
            }
            let cap = lane.deficit.min(batch_max.max(1) as u64) as usize;
            let batch = lane.sched.pop_batch(cap);
            self.len -= batch.len();
            lane.deficit = lane.deficit.saturating_sub(batch.len() as u64);
            if lane.sched.is_empty() {
                lane.deficit = 0;
            }
            // A lane with credit left keeps the floor; otherwise the
            // next lane is up.
            self.cursor = if lane.deficit > 0 { ti } else { (ti + 1) % n };
            return batch;
        }
        Vec::new()
    }
}

/// Per-tenant inflight governor: admission control for
/// `--tenant-max-inflight`.
///
/// A leader flight acquires a slot for its tenant before entering the
/// executor and holds it until the flight publishes; past the cap the
/// server sheds that tenant's request with `429` + `retry_after_ms`
/// while other tenants sail on.  The anonymous tenant (`""`) is never
/// limited — untagged traffic keeps the pre-tenant behaviour, bounded
/// only by the global queue.
pub struct TenantGovernor {
    /// Per-tenant inflight cap; `0` disables the governor entirely.
    max_inflight: usize,
    counts: Mutex<HashMap<String, usize>>,
}

impl TenantGovernor {
    pub fn new(max_inflight: usize) -> TenantGovernor {
        TenantGovernor {
            max_inflight,
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the governor does anything at all.
    pub fn enabled(&self) -> bool {
        self.max_inflight > 0
    }

    /// Claim a slot for `tenant`; `false` means the tenant is at its
    /// cap and the request should be shed.
    pub fn try_acquire(&self, tenant: &str) -> bool {
        if self.max_inflight == 0 || tenant.is_empty() {
            return true;
        }
        let mut counts = self.counts.lock().unwrap();
        let n = counts.entry(tenant.to_string()).or_insert(0);
        if *n >= self.max_inflight {
            return false;
        }
        *n += 1;
        true
    }

    /// Release a slot claimed by [`try_acquire`](Self::try_acquire).
    pub fn release(&self, tenant: &str) {
        if self.max_inflight == 0 || tenant.is_empty() {
            return;
        }
        let mut counts = self.counts.lock().unwrap();
        if let Some(n) = counts.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                counts.remove(tenant);
            }
        }
    }

    /// Flights `tenant` currently has inside the evaluation pipeline.
    pub fn inflight(&self, tenant: &str) -> usize {
        self.counts
            .lock()
            .unwrap()
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }
}

/// Effective small-batch cap for the current backlog: spread the
/// queued jobs evenly across the worker pool instead of always filling
/// a dispatch to `batch_max`.
///
/// An idle server (one queued job, several free workers) dispatches a
/// batch of 1, so a lone request never waits behind batch assembly;
/// only when the backlog exceeds `workers × batch_max` does every
/// dispatch fill to the configured cap.  Monotone in `queued`, clamped
/// to `1..=batch_max`.
pub fn adaptive_batch_cap(queued: usize, workers: usize, batch_max: usize) -> usize {
    let per_worker = queued.div_ceil(workers.max(1));
    per_worker.clamp(1, batch_max.max(1))
}

/// Occupancy gauge for the worker pool: how many workers are inside a
/// dispatch right now.  The dispatch closure enters on arrival and
/// leaves on return (RAII), so a worker deciding how many threads to
/// grant a large parallel job can ask for the pool's current idleness
/// without any reference back into the executor.
///
/// The grant is *advisory* sizing, not a thread reservation: the
/// work-stealing engine spawns its own scoped threads for the
/// evaluation and joins them before the dispatch returns, so the pool
/// never loses a worker.  Sizing by idleness keeps a saturated pool at
/// one thread per evaluation (exactly the pre-grant behaviour) while
/// an idle pool lends its spare parallelism to the one big job.
pub struct ActiveGauge {
    workers: usize,
    active: AtomicUsize,
}

impl ActiveGauge {
    /// A gauge over a pool of `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> ActiveGauge {
        ActiveGauge {
            workers: workers.max(1),
            active: AtomicUsize::new(0),
        }
    }

    /// Mark one worker busy until the guard drops.
    pub fn enter(&self) -> ActiveGuard<'_> {
        self.active.fetch_add(1, Ordering::Relaxed);
        ActiveGuard { gauge: self }
    }

    /// Workers currently inside a dispatch.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Workers not inside a dispatch.
    pub fn idle(&self) -> usize {
        self.workers.saturating_sub(self.active())
    }

    /// Thread grant for a large job running on a worker that has
    /// already [`enter`](Self::enter)ed: itself plus every currently
    /// idle worker, capped at `par_max_workers` and never below 1.
    pub fn par_grant(&self, par_max_workers: u32) -> u32 {
        let available = (self.idle() + 1).min(u32::MAX as usize) as u32;
        available.min(par_max_workers.max(1))
    }
}

/// RAII handle from [`ActiveGauge::enter`].
pub struct ActiveGuard<'a> {
    gauge: &'a ActiveGauge,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.gauge.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The global queue bound is reached; shed the request.
    Full,
    /// The executor is shutting down.
    Closed,
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Evaluation worker threads (clamped to at least 1).
    pub workers: usize,
    /// Global queue bound across all algorithm queues.
    pub queue_depth: usize,
    /// Most small jobs evaluated per dispatch.
    pub batch_max: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 2,
            queue_depth: 64,
            batch_max: 16,
        }
    }
}

struct Core<J> {
    sched: TenantScheduler<J>,
    closed: bool,
}

struct ExecutorShared<J> {
    core: Mutex<Core<J>>,
    cv: Condvar,
    batch_max: usize,
    workers: usize,
}

/// A fixed pool of evaluation workers over a shared [`Scheduler`].
///
/// Generic over the job type and the dispatch function so the serving
/// layer, the unit tests, and the criterion bench can all drive it;
/// `run` receives each popped batch on a worker thread.
pub struct Executor<J: Send + 'static> {
    shared: Arc<ExecutorShared<J>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<J: Send + 'static> Executor<J> {
    /// Start `config.workers` worker threads dispatching batches to
    /// `run`.
    pub fn start<F>(config: ExecutorConfig, run: F) -> Executor<J>
    where
        F: Fn(Vec<J>) + Send + Sync + 'static,
    {
        let shared = Arc::new(ExecutorShared {
            core: Mutex::new(Core {
                sched: TenantScheduler::new(config.queue_depth, config.batch_max.max(1) as u64),
                closed: false,
            }),
            cv: Condvar::new(),
            batch_max: config.batch_max.max(1),
            workers: config.workers.max(1),
        });
        let run = Arc::new(run);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                thread::spawn(move || worker_loop(&shared, run.as_ref()))
            })
            .collect();
        Executor {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit one job for the anonymous tenant; fails fast when the
    /// queue is at its bound or the executor is closed.
    pub fn submit(&self, algo: &str, class: CostClass, job: J) -> Result<(), SubmitError> {
        self.submit_tagged("", algo, class, job)
    }

    /// Submit one job for `tenant`; jobs are dispatched under deficit
    /// round-robin across tenants (see [`TenantScheduler`]).
    pub fn submit_tagged(
        &self,
        tenant: &str,
        algo: &str,
        class: CostClass,
        job: J,
    ) -> Result<(), SubmitError> {
        let mut core = self.shared.core.lock().unwrap();
        if core.closed {
            return Err(SubmitError::Closed);
        }
        core.sched
            .push(tenant, algo, class, job)
            .map_err(|_| SubmitError::Full)?;
        drop(core);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not yet popped by a worker).
    pub fn queued(&self) -> usize {
        self.shared.core.lock().unwrap().sched.len()
    }

    /// Close the queue and reap every worker.  Jobs still queued are
    /// dropped, not run: by shutdown time their waiters have already
    /// been answered (drained windows or expired deadlines), so
    /// running them would only delay the exit.
    pub fn shutdown(&self) {
        {
            let mut core = self.shared.core.lock().unwrap();
            core.closed = true;
        }
        self.shared.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop<J, F>(shared: &ExecutorShared<J>, run: &F)
where
    F: Fn(Vec<J>),
{
    loop {
        let batch = {
            let mut core = shared.core.lock().unwrap();
            loop {
                if core.closed {
                    return;
                }
                if !core.sched.is_empty() {
                    let cap =
                        adaptive_batch_cap(core.sched.len(), shared.workers, shared.batch_max);
                    break core.sched.pop_batch(cap);
                }
                core = shared.cv.wait(core).unwrap();
            }
        };
        if !batch.is_empty() {
            run(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn classify_splits_on_the_threshold() {
        assert_eq!(CostClass::classify(100, 100), CostClass::Small);
        assert_eq!(CostClass::classify(101, 100), CostClass::Large);
        assert_eq!(CostClass::classify(0, 0), CostClass::Small);
    }

    #[test]
    fn scheduler_is_fifo_within_a_band() {
        let mut s = Scheduler::new(16);
        for i in 0..5 {
            s.push("a", CostClass::Small, i).unwrap();
        }
        assert_eq!(s.pop_batch(16), vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn scheduler_batches_at_most_batch_max() {
        let mut s = Scheduler::new(64);
        for i in 0..10 {
            s.push("a", CostClass::Small, i).unwrap();
        }
        assert_eq!(s.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(s.pop_batch(4), vec![4, 5, 6, 7]);
        assert_eq!(s.pop_batch(4), vec![8, 9]);
    }

    #[test]
    fn small_jobs_preempt_large_ones_across_algorithms() {
        let mut s = Scheduler::new(16);
        s.push("big", CostClass::Large, 100).unwrap();
        s.push("tiny", CostClass::Small, 1).unwrap();
        s.push("tiny", CostClass::Small, 2).unwrap();
        // Small band drains first even though the large job arrived
        // earlier on a different queue.
        assert_eq!(s.pop_batch(8), vec![1, 2]);
        assert_eq!(s.pop_batch(8), vec![100]);
    }

    #[test]
    fn large_jobs_pop_one_at_a_time() {
        let mut s = Scheduler::new(16);
        s.push("a", CostClass::Large, 1).unwrap();
        s.push("a", CostClass::Large, 2).unwrap();
        assert_eq!(s.pop_batch(8), vec![1]);
        assert_eq!(s.pop_batch(8), vec![2]);
    }

    #[test]
    fn round_robin_rotates_between_algorithm_queues() {
        let mut s = Scheduler::new(64);
        for i in 0..3 {
            s.push("a", CostClass::Small, 10 + i).unwrap();
            s.push("b", CostClass::Small, 20 + i).unwrap();
        }
        // Alternating dispatches: neither algorithm starves.
        assert_eq!(s.pop_batch(2), vec![10, 11]);
        assert_eq!(s.pop_batch(2), vec![20, 21]);
        assert_eq!(s.pop_batch(2), vec![12]);
        assert_eq!(s.pop_batch(2), vec![22]);
    }

    #[test]
    fn capacity_bounds_the_whole_scheduler() {
        let mut s = Scheduler::new(2);
        s.push("a", CostClass::Small, 1).unwrap();
        s.push("b", CostClass::Large, 2).unwrap();
        assert_eq!(s.push("c", CostClass::Small, 3), Err(3));
        let _ = s.pop_batch(8);
        assert!(s.push("c", CostClass::Small, 3).is_ok());
    }

    #[test]
    fn adaptive_cap_scales_with_backlog() {
        // Idle: a lone job dispatches alone, no batch-wait added.
        assert_eq!(adaptive_batch_cap(1, 2, 16), 1);
        assert_eq!(adaptive_batch_cap(0, 2, 16), 1);
        // Light backlog: batches stay proportional to depth.
        assert_eq!(adaptive_batch_cap(4, 2, 16), 2);
        assert_eq!(adaptive_batch_cap(5, 2, 16), 3);
        // Saturated: the configured cap is the ceiling.
        assert_eq!(adaptive_batch_cap(64, 2, 16), 16);
        assert_eq!(adaptive_batch_cap(1_000_000, 2, 16), 16);
        // Degenerate knobs are clamped, never zero or a panic.
        assert_eq!(adaptive_batch_cap(10, 0, 0), 1);
        // Monotone in queue depth.
        let caps: Vec<usize> = (0..200).map(|q| adaptive_batch_cap(q, 3, 8)).collect();
        assert!(caps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn active_gauge_counts_and_grants() {
        let g = ActiveGauge::new(4);
        assert_eq!(g.idle(), 4);
        // An idle pool grants the caller plus every idle worker,
        // capped by par_max_workers.
        let a = g.enter();
        assert_eq!(g.active(), 1);
        assert_eq!(g.par_grant(8), 4); // self + 3 idle
        assert_eq!(g.par_grant(2), 2); // cap wins
        let b = g.enter();
        let c = g.enter();
        assert_eq!(g.par_grant(8), 2); // self + 1 idle
        drop(b);
        assert_eq!(g.par_grant(8), 3);
        drop(a);
        drop(c);
        assert_eq!(g.active(), 0);
        // A saturated (or over-subscribed) pool degrades to 1.
        let g = ActiveGauge::new(1);
        let _a = g.enter();
        assert_eq!(g.par_grant(8), 1);
        assert_eq!(g.par_grant(0), 1); // degenerate cap clamps up
    }

    #[test]
    fn tenant_drr_shares_dispatches_between_backlogged_tenants() {
        // Tenant "flood" queues 40 jobs, tenant "calm" queues 8.
        // With a quantum of 4 the dispatch stream must alternate
        // 4-job turns until calm drains, instead of serving flood's
        // whole backlog first.
        let mut s: TenantScheduler<&'static str> = TenantScheduler::new(64, 4);
        for _ in 0..40 {
            s.push("flood", "a", CostClass::Small, "flood").unwrap();
        }
        for _ in 0..8 {
            s.push("calm", "a", CostClass::Small, "calm").unwrap();
        }
        let mut calm_done_at = None;
        let mut served = 0usize;
        while !s.is_empty() {
            let batch = s.pop_batch(16);
            assert!(!batch.is_empty());
            served += batch.len();
            if calm_done_at.is_none() && s.queued_for("calm") == 0 {
                calm_done_at = Some(served);
            }
        }
        assert_eq!(served, 48);
        // Calm's 8 jobs ride along in the first few cycles: by the
        // time ~2 full cycles (2 × (4+4) = 16 jobs) have been served,
        // calm must be drained.  FIFO-by-arrival would have made calm
        // wait for all 40 flood jobs.
        assert!(
            calm_done_at.unwrap() <= 16,
            "calm drained only after {} dispatched jobs",
            calm_done_at.unwrap()
        );
    }

    #[test]
    fn tenant_lane_keeps_the_floor_while_it_has_credit() {
        // quantum 4, batch cap 2: a lane's turn spans two dispatches
        // before the cursor moves on.
        let mut s: TenantScheduler<u32> = TenantScheduler::new(64, 4);
        for i in 0..8 {
            s.push("a", "x", CostClass::Small, 10 + i).unwrap();
            s.push("b", "x", CostClass::Small, 20 + i).unwrap();
        }
        assert_eq!(s.pop_batch(2), vec![10, 11]);
        assert_eq!(s.pop_batch(2), vec![12, 13]); // credit left: same lane
        assert_eq!(s.pop_batch(2), vec![20, 21]); // quantum spent: next lane
        assert_eq!(s.pop_batch(2), vec![22, 23]);
        assert_eq!(s.pop_batch(2), vec![14, 15]);
    }

    #[test]
    fn tenant_scheduler_keeps_small_over_large_within_a_lane() {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(16, 8);
        s.push("t", "a", CostClass::Large, 100).unwrap();
        s.push("t", "a", CostClass::Small, 1).unwrap();
        assert_eq!(s.pop_batch(8), vec![1]);
        assert_eq!(s.pop_batch(8), vec![100]);
        assert!(s.is_empty());
    }

    #[test]
    fn tenant_scheduler_capacity_is_global_across_lanes() {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(2, 4);
        s.push("a", "x", CostClass::Small, 1).unwrap();
        s.push("b", "x", CostClass::Small, 2).unwrap();
        assert_eq!(s.push("c", "x", CostClass::Small, 3), Err(3));
        let _ = s.pop_batch(8);
        assert!(s.push("c", "x", CostClass::Small, 3).is_ok());
    }

    #[test]
    fn governor_caps_each_tenant_but_never_the_anonymous_lane() {
        let g = TenantGovernor::new(2);
        assert!(g.enabled());
        assert!(g.try_acquire("a"));
        assert!(g.try_acquire("a"));
        assert!(!g.try_acquire("a"), "third flight must shed");
        // Another tenant is unaffected.
        assert!(g.try_acquire("b"));
        // Anonymous traffic is never limited.
        for _ in 0..10 {
            assert!(g.try_acquire(""));
        }
        g.release("a");
        assert_eq!(g.inflight("a"), 1);
        assert!(g.try_acquire("a"));
        // Disabled governor admits everything.
        let off = TenantGovernor::new(0);
        assert!(!off.enabled());
        for _ in 0..100 {
            assert!(off.try_acquire("a"));
        }
    }

    #[test]
    fn executor_runs_tagged_jobs_from_every_tenant() {
        let total = Arc::new(AtomicUsize::new(0));
        let exec: Executor<usize> = Executor::start(
            ExecutorConfig {
                workers: 2,
                queue_depth: 256,
                batch_max: 4,
            },
            {
                let total = Arc::clone(&total);
                move |batch: Vec<usize>| {
                    total.fetch_add(batch.iter().sum::<usize>(), Ordering::SeqCst);
                }
            },
        );
        let mut want = 0usize;
        for i in 1..=60usize {
            let tenant = ["", "team-a", "team-b"][i % 3];
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match exec.submit_tagged(tenant, "algo", CostClass::Small, i) {
                    Ok(()) => break,
                    Err(SubmitError::Full) if Instant::now() < deadline => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("submit failed: {e:?}"),
                }
            }
            want += i;
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while total.load(Ordering::SeqCst) < want && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        exec.shutdown();
        assert_eq!(total.load(Ordering::SeqCst), want);
    }

    #[test]
    fn executor_runs_every_submitted_job() {
        let total = Arc::new(AtomicUsize::new(0));
        let batches = Arc::new(AtomicUsize::new(0));
        let exec: Executor<usize> = Executor::start(
            ExecutorConfig {
                workers: 3,
                queue_depth: 256,
                batch_max: 8,
            },
            {
                let total = Arc::clone(&total);
                let batches = Arc::clone(&batches);
                move |batch| {
                    batches.fetch_add(1, Ordering::SeqCst);
                    total.fetch_add(batch.iter().sum::<usize>(), Ordering::SeqCst);
                }
            },
        );
        let mut want = 0usize;
        for i in 1..=100usize {
            let class = if i % 10 == 0 {
                CostClass::Large
            } else {
                CostClass::Small
            };
            // Submit with retry: workers drain concurrently.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match exec.submit("algo", class, i) {
                    Ok(()) => break,
                    Err(SubmitError::Full) if Instant::now() < deadline => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("submit failed: {e:?}"),
                }
            }
            want += i;
        }
        // Wait for the queue to drain, then shut down.
        let deadline = Instant::now() + Duration::from_secs(10);
        while total.load(Ordering::SeqCst) < want && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        exec.shutdown();
        assert_eq!(total.load(Ordering::SeqCst), want);
        assert!(
            batches.load(Ordering::SeqCst) >= 10,
            "large jobs alone force ≥10 dispatches"
        );
        assert_eq!(
            exec.submit("algo", CostClass::Small, 1),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn shed_when_full_then_closed_when_shut_down() {
        // One worker blocked forever on a sentinel lets the queue fill.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let exec: Executor<u32> = Executor::start(
            ExecutorConfig {
                workers: 1,
                queue_depth: 1,
                batch_max: 1,
            },
            move |_| {
                let _ = gate_rx.lock().unwrap().recv();
            },
        );
        // First job occupies the worker; second fills the queue.
        exec.submit("a", CostClass::Large, 0).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while exec.queued() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        exec.submit("a", CostClass::Large, 1).unwrap();
        assert_eq!(
            exec.submit("a", CostClass::Large, 2),
            Err(SubmitError::Full)
        );
        drop(gate_tx); // unblock the worker
        exec.shutdown();
        assert_eq!(
            exec.submit("a", CostClass::Large, 3),
            Err(SubmitError::Closed)
        );
    }
}
