//! gt-trace: per-request stage tracing, a flight recorder, and
//! Prometheus text exposition for gt-serve.
//!
//! Three pieces, all std-only:
//!
//! * [`StageStamps`] — a per-flight timestamp card.  The base instant
//!   is taken when the flight is enqueued; workers stamp microsecond
//!   offsets (dispatch, engine start, engine end) into relaxed atomics
//!   as the job moves through the executor.  The server folds the
//!   deltas into the per-algorithm stage histograms
//!   ([`crate::metrics::AlgoStages`]) and into a [`TraceRecord`].
//! * [`FlightRecorder`] — two fixed-size rings of completed request
//!   traces.  The *recent* ring holds the last N requests regardless
//!   of outcome; the *notable* ring holds slow (≥ `--slow-us`), shed,
//!   timed-out and failed requests so a burst of healthy traffic
//!   cannot wash away the evidence of a bad one.  Memory is bounded by
//!   construction: two `Vec`s of `Option<Arc<TraceRecord>>` slots that
//!   are overwritten in place, never grown.  The `op:"trace"` protocol
//!   verb snapshots both rings, newest first.
//! * [`render_prometheus`] + [`spawn_metrics_listener`] — the metrics
//!   registry, cache shards, executor queue depth and engine work
//!   counters rendered in the Prometheus text exposition format
//!   (version 0.0.4), served by a minimal single-threaded HTTP
//!   listener on `--metrics-addr`.  Power-of-two microsecond buckets
//!   become cumulative `le`-labelled buckets in seconds.

use crate::cache::CacheStats;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::workload::EvalOutcome;
use gt_analysis::Json;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sentinel for "stage not reached".
const UNSET: u64 = u64::MAX;

/// Microsecond stage offsets for one engine flight, stamped lock-free
/// as the job crosses thread boundaries.  The base instant is the
/// moment the flight was created — i.e. right before the executor
/// enqueue — so `dispatch` is the queue wait and `engine_start -
/// dispatch` is the time spent waiting behind batchmates.
pub struct StageStamps {
    base: Instant,
    dispatch: AtomicU64,
    engine_start: AtomicU64,
    engine_end: AtomicU64,
}

impl Default for StageStamps {
    fn default() -> Self {
        StageStamps {
            base: Instant::now(),
            dispatch: AtomicU64::new(UNSET),
            engine_start: AtomicU64::new(UNSET),
            engine_end: AtomicU64::new(UNSET),
        }
    }
}

impl StageStamps {
    fn now_us(&self) -> u64 {
        // Saturate the sentinel away: a real offset of u64::MAX µs
        // would need half a million years of queueing.
        (self.base.elapsed().as_micros() as u64).min(UNSET - 1)
    }

    /// The enqueue instant the offsets are relative to.
    pub fn base(&self) -> Instant {
        self.base
    }

    /// Stamp "a worker popped this job's batch".
    pub fn stamp_dispatch(&self) {
        self.dispatch.store(self.now_us(), Ordering::Relaxed);
    }

    /// Stamp "the engine for this job started".
    pub fn stamp_engine_start(&self) {
        self.engine_start.store(self.now_us(), Ordering::Relaxed);
    }

    /// Stamp "the engine for this job returned".
    pub fn stamp_engine_end(&self) {
        self.engine_end.store(self.now_us(), Ordering::Relaxed);
    }

    fn get(cell: &AtomicU64) -> Option<u64> {
        match cell.load(Ordering::Relaxed) {
            UNSET => None,
            us => Some(us),
        }
    }

    /// Offset of the dispatch stamp, if the job left the queue.
    pub fn dispatch_us(&self) -> Option<u64> {
        Self::get(&self.dispatch)
    }

    /// Offset of the engine-start stamp.
    pub fn engine_start_us(&self) -> Option<u64> {
        Self::get(&self.engine_start)
    }

    /// Offset of the engine-end stamp.
    pub fn engine_end_us(&self) -> Option<u64> {
        Self::get(&self.engine_end)
    }
}

/// One finished request, flattened into plain data for the flight
/// recorder and the `op:"trace"` reply.  All `_us` fields are offsets
/// from the moment the request line was read off the socket.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Recorder-assigned sequence number (monotone, newest = highest).
    pub seq: u64,
    /// The request's echoed `id`, if it sent one.
    pub id: Option<String>,
    /// Canonical cache key (`spec|algo`).
    pub key: String,
    /// Algorithm selector name (`cascade`, `seq-solve`, …).
    pub algo: String,
    /// Final disposition: `ok`, `timeout`, `busy`, `internal`,
    /// `cancelled`.
    pub status: String,
    /// Answered from the result cache without touching the executor.
    pub cached: bool,
    /// Joined another request's in-flight engine run.
    pub coalesced: bool,
    /// recv → reply bytes written.
    pub latency_us: u64,
    /// recv → request line parsed.
    pub parse_us: u64,
    /// recv → cache probed (hit answered / miss validated).
    pub probe_us: u64,
    /// recv → flight enqueued on the executor (`None` for cache hits).
    pub enqueue_us: Option<u64>,
    /// recv → a worker popped the batch.
    pub dispatch_us: Option<u64>,
    /// recv → engine started.
    pub engine_start_us: Option<u64>,
    /// recv → engine returned.
    pub engine_end_us: Option<u64>,
    /// The engine's answer and work counters, when it produced one.
    pub work: Option<EvalOutcome>,
    /// Distributed-trace id propagated on the request, when the
    /// sender attached one — links this record to a fleet-wide span
    /// tree assembled upstream.
    pub trace_id: Option<String>,
    /// Span id of the sender's dispatch span (this record is its
    /// child).
    pub parent_span: Option<u64>,
    /// The request's `tenant` tag, when it carried one — lets a trace
    /// query attribute a slow or shed request to its tenant.
    pub tenant: Option<String>,
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(us) => Json::from(us),
        None => Json::Null,
    }
}

impl TraceRecord {
    /// Should this trace be pinned in the notable ring?
    pub fn is_notable(&self, slow_us: u64) -> bool {
        self.status != "ok" || self.latency_us >= slow_us
    }

    /// Serialize for the `op:"trace"` reply.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            (
                "id",
                match &self.id {
                    Some(id) => Json::from(id.as_str()),
                    None => Json::Null,
                },
            ),
            ("key", Json::from(self.key.as_str())),
            ("algo", Json::from(self.algo.as_str())),
            ("status", Json::from(self.status.as_str())),
            ("cached", Json::from(self.cached)),
            ("coalesced", Json::from(self.coalesced)),
            ("latency_us", Json::from(self.latency_us)),
            ("parse_us", Json::from(self.parse_us)),
            ("probe_us", Json::from(self.probe_us)),
            ("enqueue_us", opt_u64(self.enqueue_us)),
            ("dispatch_us", opt_u64(self.dispatch_us)),
            ("engine_start_us", opt_u64(self.engine_start_us)),
            ("engine_end_us", opt_u64(self.engine_end_us)),
            (
                "work",
                match &self.work {
                    Some(w) => w.work_json(),
                    None => Json::Null,
                },
            ),
            (
                "trace_id",
                match &self.trace_id {
                    Some(t) => Json::from(t.as_str()),
                    None => Json::Null,
                },
            ),
            ("parent_span", opt_u64(self.parent_span)),
            (
                "tenant",
                match &self.tenant {
                    Some(t) => Json::from(t.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parse a record rendered by [`TraceRecord::to_json`] — used by
    /// clients of `op:"trace"` and the round-trip tests.
    pub fn from_json(j: &Json) -> Result<TraceRecord, String> {
        let need_u64 = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace record missing {k}"))
        };
        let need_str = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trace record missing {k}"))
        };
        let opt = |k: &str| j.get(k).and_then(Json::as_u64);
        let work = match j.get("work") {
            None | Some(Json::Null) => None,
            Some(w) => Some(EvalOutcome {
                value: w
                    .get("value")
                    .and_then(Json::as_int)
                    .ok_or("work missing value")? as i64,
                work: w
                    .get("leaves")
                    .and_then(Json::as_u64)
                    .ok_or("work missing leaves")?,
                steps: w
                    .get("steps")
                    .and_then(Json::as_u64)
                    .ok_or("work missing steps")?,
                max_width: w
                    .get("max_width")
                    .and_then(Json::as_u64)
                    .ok_or("work missing max_width")? as u32,
                pruned: w
                    .get("pruned")
                    .and_then(Json::as_u64)
                    .ok_or("work missing pruned")?,
                // Work-stealing counters: absent in records written
                // before the par engines existed, so default to 0.
                steals: w.get("steals").and_then(Json::as_u64).unwrap_or(0),
                retired: w.get("retired").and_then(Json::as_u64).unwrap_or(0),
                narrowings: w.get("narrowed").and_then(Json::as_u64).unwrap_or(0),
            }),
        };
        Ok(TraceRecord {
            seq: need_u64("seq")?,
            id: j.get("id").and_then(Json::as_str).map(str::to_string),
            key: need_str("key")?,
            algo: need_str("algo")?,
            status: need_str("status")?,
            cached: j.get("cached").and_then(Json::as_bool).unwrap_or(false),
            coalesced: j.get("coalesced").and_then(Json::as_bool).unwrap_or(false),
            latency_us: need_u64("latency_us")?,
            parse_us: need_u64("parse_us")?,
            probe_us: need_u64("probe_us")?,
            enqueue_us: opt("enqueue_us"),
            dispatch_us: opt("dispatch_us"),
            engine_start_us: opt("engine_start_us"),
            engine_end_us: opt("engine_end_us"),
            work,
            trace_id: j.get("trace_id").and_then(Json::as_str).map(str::to_string),
            parent_span: opt("parent_span"),
            tenant: j.get("tenant").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// A fixed-capacity overwrite-in-place ring of trace records.  Slots
/// are individually locked so writers on different slots never
/// contend; the cursor is a relaxed fetch-add, making `push` wait-free
/// against other pushers apart from the (uncontended) slot lock.
struct Ring {
    slots: Vec<Mutex<Option<Arc<TraceRecord>>>>,
    cursor: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn push(&self, rec: Arc<TraceRecord>) {
        if self.slots.is_empty() {
            return;
        }
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[at].lock().unwrap() = Some(rec);
    }

    fn collect_into(&self, out: &mut Vec<Arc<TraceRecord>>) {
        for slot in &self.slots {
            if let Some(rec) = slot.lock().unwrap().as_ref() {
                out.push(Arc::clone(rec));
            }
        }
    }
}

/// The flight recorder: last-N ring plus a pinned ring of notable
/// (slow / shed / timed-out / failed) requests.  Total memory is
/// `2 × capacity` records no matter how much traffic flows through.
pub struct FlightRecorder {
    recent: Ring,
    notable: Ring,
    slow_us: u64,
    next_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining `capacity` recent and `capacity` notable
    /// traces; requests at or above `slow_us` microseconds end-to-end
    /// count as notable.  `capacity = 0` disables recording.
    pub fn new(capacity: usize, slow_us: u64) -> FlightRecorder {
        FlightRecorder {
            recent: Ring::new(capacity),
            notable: Ring::new(capacity),
            slow_us,
            next_seq: AtomicU64::new(0),
        }
    }

    /// The slow-trace threshold, microseconds.
    pub fn slow_us(&self) -> u64 {
        self.slow_us
    }

    /// Record one finished request.  Assigns the record's `seq`.
    pub fn record(&self, mut rec: TraceRecord) {
        rec.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let rec = Arc::new(rec);
        if rec.is_notable(self.slow_us) {
            self.notable.push(Arc::clone(&rec));
        }
        self.recent.push(rec);
    }

    /// Up to `limit` retained traces, newest first, notable and recent
    /// merged without duplicates.
    pub fn snapshot(&self, limit: usize) -> Vec<Arc<TraceRecord>> {
        let mut all = Vec::new();
        self.recent.collect_into(&mut all);
        self.notable.collect_into(&mut all);
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.dedup_by(|a, b| a.seq == b.seq);
        all.truncate(limit);
        all
    }

    /// Serialize a snapshot for the `op:"trace"` reply.
    pub fn snapshot_json(&self, limit: usize) -> Json {
        Json::Array(self.snapshot(limit).iter().map(|r| r.to_json()).collect())
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (format version 0.0.4).
// ---------------------------------------------------------------------------

/// `le` bound of power-of-two µs bucket `i`, in seconds.
fn le_seconds(i: usize) -> f64 {
    (1u64 << (i + 1)) as f64 / 1e6
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Render one histogram's sample lines (cumulative `le` buckets in
/// seconds, then `_sum` and `_count`).  `labels` is either empty or
/// `key="value",…` without braces.
fn histogram_samples(
    out: &mut String,
    name: &str,
    labels: &str,
    buckets: &[u64],
    count: u64,
    sum_us: u64,
) {
    use std::fmt::Write as _;
    let with = |extra: &str| {
        if labels.is_empty() {
            format!("{{{extra}}}")
        } else {
            format!("{{{labels},{extra}}}")
        }
    };
    let plain = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            with(&format!("le=\"{}\"", le_seconds(i)))
        );
    }
    let _ = writeln!(out, "{name}_bucket{} {count}", with("le=\"+Inf\""));
    let _ = writeln!(out, "{name}_sum{plain} {}", sum_us as f64 / 1e6);
    let _ = writeln!(out, "{name}_count{plain} {count}");
}

fn histogram_header(out: &mut String, name: &str, help: &str) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
}

/// Render one *unitless* histogram's sample lines — power-of-two
/// buckets whose `le` bounds are plain counts (queue depths), not
/// seconds, and whose `_sum` is the raw observation sum.
fn depth_histogram_samples(
    out: &mut String,
    name: &str,
    labels: &str,
    buckets: &[u64],
    count: u64,
    sum: u64,
) {
    use std::fmt::Write as _;
    let with = |extra: &str| {
        if labels.is_empty() {
            format!("{{{extra}}}")
        } else {
            format!("{{{labels},{extra}}}")
        }
    };
    let plain = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            with(&format!("le=\"{}\"", 1u64 << (i + 1)))
        );
    }
    let _ = writeln!(out, "{name}_bucket{} {count}", with("le=\"+Inf\""));
    let _ = writeln!(out, "{name}_sum{plain} {sum}");
    let _ = writeln!(out, "{name}_count{plain} {count}");
}

fn stage_histogram(out: &mut String, algo: &str, stage: &str, h: &HistogramSnapshot) {
    let labels = format!("algo=\"{algo}\",stage=\"{stage}\"");
    histogram_samples(
        out,
        "gtserve_stage_latency_seconds",
        &labels,
        &h.buckets,
        h.count,
        h.sum_us,
    );
}

/// One per-io-thread Prometheus series: name, help text, the value
/// drawn from an [`crate::io::IoLoopSnapshot`], and whether it is a
/// cumulative counter (vs a gauge).
type IoLoopSeries = (
    &'static str,
    &'static str,
    fn(&crate::io::IoLoopSnapshot) -> f64,
    bool,
);

/// Render the whole registry — request counters, the end-to-end and
/// per-stage latency histograms, engine work counters, cache shards
/// and executor queue depth — as Prometheus text exposition.
pub fn render_prometheus(
    m: &MetricsSnapshot,
    cache: &CacheStats,
    executor_queued: usize,
    flights_inflight: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    counter(
        &mut out,
        "gtserve_requests_total",
        "Request lines received.",
        m.received,
    );
    counter(
        &mut out,
        "gtserve_ok_total",
        "Successful eval replies.",
        m.ok,
    );
    counter(
        &mut out,
        "gtserve_bad_request_total",
        "Malformed or invalid requests.",
        m.bad_request,
    );
    counter(
        &mut out,
        "gtserve_shed_total",
        "Requests shed by backpressure.",
        m.shed,
    );
    counter(
        &mut out,
        "gtserve_timeout_total",
        "Requests that missed their deadline.",
        m.timeout,
    );
    counter(
        &mut out,
        "gtserve_draining_total",
        "Requests rejected during drain.",
        m.draining,
    );
    counter(
        &mut out,
        "gtserve_internal_total",
        "Internal failures.",
        m.internal,
    );
    counter(
        &mut out,
        "gtserve_cache_hits_total",
        "Evals answered from the result cache.",
        m.cache_hits,
    );
    counter(
        &mut out,
        "gtserve_cache_misses_total",
        "Evals that had to run an engine.",
        m.cache_misses,
    );
    counter(
        &mut out,
        "gtserve_coalesced_total",
        "Evals that joined an in-flight run.",
        m.coalesced_hits,
    );
    counter(
        &mut out,
        "gtserve_evaluated_total",
        "Engine runs completed.",
        m.evaluated,
    );
    counter(
        &mut out,
        "gtserve_subeval_requests_total",
        "subeval request lines received.",
        m.subeval_requests,
    );
    counter(
        &mut out,
        "gtserve_subevals_total",
        "Subtree evaluations completed.",
        m.subevals,
    );
    counter(
        &mut out,
        "gtserve_connections_total",
        "Connections accepted.",
        m.connections,
    );
    gauge(
        &mut out,
        "gtserve_open_connections",
        "Connections currently registered with an I/O thread.",
        m.open_conns as f64,
    );
    counter(
        &mut out,
        "gtserve_conn_idle_closed_total",
        "Connections closed by the idle timeout.",
        m.idle_closed,
    );
    counter(
        &mut out,
        "gtserve_conn_overflow_closed_total",
        "Connections closed for overflowing their outbound queue.",
        m.overflow_closed,
    );
    counter(
        &mut out,
        "gtserve_conn_overlong_closed_total",
        "Connections closed for an over-long request line.",
        m.overlong_closed,
    );
    counter(
        &mut out,
        "gtserve_batches_total",
        "Executor dispatches performed.",
        m.batches,
    );
    counter(
        &mut out,
        "gtserve_batch_jobs_total",
        "Jobs carried by executor dispatches.",
        m.batch_jobs,
    );
    counter(
        &mut out,
        "gtserve_engine_par_steals_total",
        "Work-stealing engine: tasks stolen across worker deques.",
        m.par_steals,
    );
    counter(
        &mut out,
        "gtserve_engine_par_retires_total",
        "Work-stealing engine: tasks retired unrun by cutoffs (the pre-emption rule).",
        m.par_retires,
    );
    counter(
        &mut out,
        "gtserve_engine_par_window_narrowings_total",
        "Work-stealing engine: shared alpha/beta window bound movements.",
        m.par_narrowings,
    );
    counter(
        &mut out,
        "gtserve_engine_par_grants_total",
        "Multi-thread worker grants issued to par-* evaluations.",
        m.par_grants,
    );
    counter(
        &mut out,
        "gtserve_engine_par_grant_threads_total",
        "Threads covered by those grants (divide by grants for the mean width).",
        m.par_grant_threads,
    );

    histogram_header(
        &mut out,
        "gtserve_latency_seconds",
        "End-to-end server-side latency of eval requests.",
    );
    histogram_samples(
        &mut out,
        "gtserve_latency_seconds",
        "",
        &m.latency_buckets,
        m.latency_count,
        m.latency_sum_us,
    );

    if !m.stages.is_empty() {
        histogram_header(
            &mut out,
            "gtserve_stage_latency_seconds",
            "Per-stage latency by algorithm (queue_wait, batch_wait, engine, write).",
        );
        for s in &m.stages {
            stage_histogram(&mut out, &s.algo, "queue_wait", &s.queue_wait);
            stage_histogram(&mut out, &s.algo, "batch_wait", &s.batch_wait);
            stage_histogram(&mut out, &s.algo, "engine", &s.engine);
            stage_histogram(&mut out, &s.algo, "write", &s.write);
        }
        let _ = writeln!(
            out,
            "# HELP gtserve_engine_work_total Engine work counters by algorithm (paper: leaves = W(T), steps = rounds)."
        );
        let _ = writeln!(out, "# TYPE gtserve_engine_work_total counter");
        for s in &m.stages {
            for (kind, v) in [
                ("evals", s.evals),
                ("leaves", s.leaves),
                ("steps", s.steps),
                ("pruned", s.pruned),
            ] {
                let _ = writeln!(
                    out,
                    "gtserve_engine_work_total{{algo=\"{}\",counter=\"{kind}\"}} {v}",
                    s.algo
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP gtserve_engine_max_width Largest evaluation frontier any run reached (processors used)."
        );
        let _ = writeln!(out, "# TYPE gtserve_engine_max_width gauge");
        for s in &m.stages {
            let _ = writeln!(
                out,
                "gtserve_engine_max_width{{algo=\"{}\"}} {}",
                s.algo, s.max_width
            );
        }
    }

    if !m.tenants.is_empty() {
        let _ = writeln!(
            out,
            "# HELP gtserve_tenant_requests_total Requests attributed to each tenant."
        );
        let _ = writeln!(out, "# TYPE gtserve_tenant_requests_total counter");
        for t in &m.tenants {
            let _ = writeln!(
                out,
                "gtserve_tenant_requests_total{{tenant=\"{}\"}} {}",
                t.tenant, t.requests
            );
        }
        let _ = writeln!(
            out,
            "# HELP gtserve_tenant_shed_total Requests shed by a tenant's inflight cap."
        );
        let _ = writeln!(out, "# TYPE gtserve_tenant_shed_total counter");
        for t in &m.tenants {
            let _ = writeln!(
                out,
                "gtserve_tenant_shed_total{{tenant=\"{}\"}} {}",
                t.tenant, t.shed
            );
        }
        histogram_header(
            &mut out,
            "gtserve_tenant_latency_seconds",
            "End-to-end latency by tenant.",
        );
        for t in &m.tenants {
            histogram_samples(
                &mut out,
                "gtserve_tenant_latency_seconds",
                &format!("tenant=\"{}\"", t.tenant),
                &t.latency.buckets,
                t.latency.count,
                t.latency.sum_us,
            );
        }
    }

    counter(
        &mut out,
        "gtserve_warmfill_entries_total",
        "Cache entries warm-filled from peers at (re)join.",
        m.warmfill_entries,
    );
    counter(
        &mut out,
        "gtserve_snapshot_restored_total",
        "Cache entries restored from the boot snapshot.",
        m.snapshot_restored,
    );
    counter(
        &mut out,
        "gtserve_cachepull_served_total",
        "cachepull requests served to warm-filling peers.",
        m.cachepull_served,
    );
    counter(
        &mut out,
        "gtserve_cachepull_entries_total",
        "Entries shipped across served cachepulls.",
        m.cachepull_entries,
    );
    counter(
        &mut out,
        "gtserve_cache_admitted_total",
        "Cache inserts that created an entry.",
        cache.admitted,
    );
    counter(
        &mut out,
        "gtserve_cache_ttl_evictions_total",
        "Cache entries aged out by TTL.",
        cache.ttl_evictions,
    );
    gauge(
        &mut out,
        "gtserve_cache_entries",
        "Entries currently cached.",
        cache.len as f64,
    );
    gauge(
        &mut out,
        "gtserve_cache_capacity",
        "Configured cache capacity.",
        cache.capacity as f64,
    );
    let _ = writeln!(
        out,
        "# HELP gtserve_cache_shard_entries Entries per cache shard."
    );
    let _ = writeln!(out, "# TYPE gtserve_cache_shard_entries gauge");
    for (i, &n) in cache.per_shard_len.iter().enumerate() {
        let _ = writeln!(out, "gtserve_cache_shard_entries{{shard=\"{i}\"}} {n}");
    }
    let _ = writeln!(
        out,
        "# HELP gtserve_cache_shard_evictions_total Evictions per cache shard."
    );
    let _ = writeln!(out, "# TYPE gtserve_cache_shard_evictions_total counter");
    for (i, &n) in cache.per_shard_evictions.iter().enumerate() {
        let _ = writeln!(
            out,
            "gtserve_cache_shard_evictions_total{{shard=\"{i}\"}} {n}"
        );
    }

    if !m.io_loops.is_empty() {
        let series: [IoLoopSeries; 5] = [
            (
                "gtserve_io_loop_iterations_total",
                "Event-loop iterations completed, per I/O thread.",
                |l| l.iterations as f64,
                true,
            ),
            (
                "gtserve_io_loop_wait_seconds_total",
                "Seconds spent blocked in epoll/poll waits, per I/O thread.",
                |l| l.wait_us as f64 / 1e6,
                true,
            ),
            (
                "gtserve_io_loop_work_seconds_total",
                "Seconds spent doing work between waits, per I/O thread.",
                |l| l.work_us as f64 / 1e6,
                true,
            ),
            (
                "gtserve_io_loop_connections",
                "Connections currently owned by each I/O thread.",
                |l| l.connections as f64,
                false,
            ),
            (
                "gtserve_io_loop_outbox_bytes",
                "Bytes queued in each I/O thread's connection outboxes.",
                |l| l.outbox_bytes as f64,
                false,
            ),
        ];
        for (name, help, value, is_counter) in series {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(
                out,
                "# TYPE {name} {}",
                if is_counter { "counter" } else { "gauge" }
            );
            for (i, l) in m.io_loops.iter().enumerate() {
                let _ = writeln!(out, "{name}{{loop=\"{i}\"}} {}", value(l));
            }
        }
        histogram_header(
            &mut out,
            "gtserve_io_loop_lag_seconds",
            "Per-iteration event-loop work time (loop-iteration lag), per I/O thread.",
        );
        for (i, l) in m.io_loops.iter().enumerate() {
            histogram_samples(
                &mut out,
                "gtserve_io_loop_lag_seconds",
                &format!("loop=\"{i}\""),
                &l.lag.buckets,
                l.lag.count,
                l.lag.sum_us,
            );
        }
    }
    if m.queue_depth.count > 0 {
        histogram_header(
            &mut out,
            "gtserve_executor_queue_depth",
            "Executor queue depth sampled over time (le = jobs queued).",
        );
        depth_histogram_samples(
            &mut out,
            "gtserve_executor_queue_depth",
            "",
            &m.queue_depth.buckets,
            m.queue_depth.count,
            m.queue_depth.sum_us,
        );
    }

    gauge(
        &mut out,
        "gtserve_executor_queued",
        "Jobs waiting in the executor's queues.",
        executor_queued as f64,
    );
    gauge(
        &mut out,
        "gtserve_flights_inflight",
        "Engine runs currently in flight (single-flight table size).",
        flights_inflight as f64,
    );
    gauge(
        &mut out,
        "gtserve_uptime_seconds",
        "Seconds since the server started.",
        m.uptime_us as f64 / 1e6,
    );
    let _ = writeln!(
        out,
        "# HELP gtserve_build_info Build metadata.\n# TYPE gtserve_build_info gauge"
    );
    let _ = writeln!(
        out,
        "gtserve_build_info{{version=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION")
    );
    out
}

// ---------------------------------------------------------------------------
// The /metrics HTTP listener.
// ---------------------------------------------------------------------------

/// How often the listener polls for shutdown while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running `/metrics` endpoint; drop-in observable from any
/// Prometheus scraper or plain `curl`.
pub struct MetricsListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsListener {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsListener {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Serve `render()` over HTTP on `addr`.  The listener is a single
/// thread handling one connection at a time — scrapes are rare and the
/// body is rendered fresh per request, so there is nothing to pipeline.
/// Every request path gets the exposition (a scraper only ever asks
/// for `/metrics`; being liberal costs nothing).
pub fn spawn_metrics_listener<A: ToSocketAddrs>(
    addr: A,
    render: Arc<dyn Fn() -> String + Send + Sync>,
) -> std::io::Result<MetricsListener> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("gt-serve-metrics".into())
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => serve_one(stream, &*render),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        })?;
    Ok(MetricsListener {
        addr: bound,
        shutdown,
        handle: Some(handle),
    })
}

/// Read (and discard) the request head, then write one exposition
/// response and close.  Any I/O error just drops the connection.
fn serve_one(mut stream: std::net::TcpStream, render: &dyn Fn() -> String) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Read until the blank line ending the request head (or give up at
    // 8 KiB / timeout — the body is served regardless).
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn record(seq_hint: u64, status: &str, latency_us: u64) -> TraceRecord {
        TraceRecord {
            seq: 0,
            id: Some(format!("r{seq_hint}")),
            key: "worst:d=2,n=8|cascade:w=1".into(),
            algo: "cascade".into(),
            status: status.into(),
            cached: false,
            coalesced: false,
            latency_us,
            parse_us: 3,
            probe_us: 7,
            enqueue_us: Some(11),
            dispatch_us: Some(40),
            engine_start_us: Some(45),
            engine_end_us: Some(latency_us.saturating_sub(5)),
            work: Some(EvalOutcome {
                value: 1,
                work: 64,
                steps: 9,
                max_width: 4,
                pruned: 2,
                steals: 5,
                retired: 3,
                narrowings: 7,
            }),
            trace_id: None,
            parent_span: None,
            tenant: None,
        }
    }

    #[test]
    fn stamps_record_monotonic_offsets() {
        let s = StageStamps::default();
        assert_eq!(s.dispatch_us(), None);
        assert_eq!(s.engine_end_us(), None);
        s.stamp_dispatch();
        std::thread::sleep(Duration::from_millis(1));
        s.stamp_engine_start();
        std::thread::sleep(Duration::from_millis(1));
        s.stamp_engine_end();
        let d = s.dispatch_us().unwrap();
        let es = s.engine_start_us().unwrap();
        let ee = s.engine_end_us().unwrap();
        assert!(d <= es && es <= ee, "{d} {es} {ee}");
        assert!(es >= d + 500, "sleep should be visible: {d} {es}");
    }

    #[test]
    fn ring_is_bounded_under_churn() {
        let rec = FlightRecorder::new(8, 1_000_000);
        for i in 0..1_000 {
            rec.record(record(i, "ok", 50));
        }
        let snap = rec.snapshot(usize::MAX);
        // Nothing was notable, so only the recent ring holds entries.
        assert_eq!(snap.len(), 8);
        // Newest first, and they are the newest.
        assert_eq!(snap[0].seq, 999);
        assert_eq!(snap[7].seq, 992);
        assert!(snap.windows(2).all(|w| w[0].seq > w[1].seq));
    }

    #[test]
    fn slow_and_error_traces_survive_churn() {
        let rec = FlightRecorder::new(8, 10_000);
        rec.record(record(0, "ok", 50_000)); // slow
        rec.record(record(1, "timeout", 200));
        rec.record(record(2, "busy", 10));
        for i in 3..200 {
            rec.record(record(i, "ok", 50)); // healthy churn
        }
        let snap = rec.snapshot(usize::MAX);
        let statuses: Vec<&str> = snap.iter().map(|r| r.status.as_str()).collect();
        assert!(statuses.contains(&"timeout"), "{statuses:?}");
        assert!(statuses.contains(&"busy"), "{statuses:?}");
        assert!(
            snap.iter().any(|r| r.latency_us == 50_000),
            "slow trace evicted"
        );
        // Still bounded: 8 recent + up to 8 notable.
        assert!(snap.len() <= 16);
        // And the limit parameter caps the reply.
        assert_eq!(rec.snapshot(3).len(), 3);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::new(0, 0);
        rec.record(record(0, "timeout", 1_000_000));
        assert!(rec.snapshot(usize::MAX).is_empty());
    }

    #[test]
    fn trace_json_round_trips() {
        let rec = {
            let mut r = record(7, "ok", 1234);
            r.seq = 42;
            r.coalesced = true;
            r
        };
        let text = rec.to_json().render();
        let back = TraceRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rec);

        // Optional fields may be null (a cache hit never dispatched).
        let hit = TraceRecord {
            enqueue_us: None,
            dispatch_us: None,
            engine_start_us: None,
            engine_end_us: None,
            work: None,
            cached: true,
            ..rec
        };
        let text = hit.to_json().render();
        let back = TraceRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, hit);

        // Distributed-trace linkage survives the round trip.
        let linked = TraceRecord {
            trace_id: Some("t-abc".into()),
            parent_span: Some(12),
            tenant: Some("acme".into()),
            ..record(9, "ok", 500)
        };
        let text = linked.to_json().render();
        let back = TraceRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.trace_id.as_deref(), Some("t-abc"));
        assert_eq!(back.parent_span, Some(12));
        assert_eq!(back.tenant.as_deref(), Some("acme"));
        assert_eq!(back, linked);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = Metrics::default();
        m.received.fetch_add(5, Ordering::Relaxed);
        m.ok.fetch_add(4, Ordering::Relaxed);
        m.latency.record(100);
        m.latency.record(3_000);
        let st = m.algo_stages("cascade");
        st.queue_wait.record(10);
        st.engine.record(1_000);
        st.record_work(&EvalOutcome {
            value: 1,
            work: 64,
            steps: 9,
            max_width: 4,
            pruned: 2,
            ..Default::default()
        });
        m.record_par_work(11, 3, 7);
        m.record_par_grant(4);
        let loop0 = m.register_io_loop();
        loop0.record_iteration(900, 100);
        loop0.set_gauges(2, 512);
        m.record_queue_depth(3);
        m.record_queue_depth(5);
        let cache = CacheStats {
            hits: 1,
            misses: 2,
            admitted: 2,
            evictions: 0,
            ttl_evictions: 0,
            len: 2,
            capacity: 256,
            ttl_ms: None,
            per_shard_len: vec![1, 1],
            per_shard_evictions: vec![0, 0],
        };
        let text = render_prometheus(&m.snapshot(), &cache, 3, 1);
        assert!(text.contains("# TYPE gtserve_requests_total counter"));
        assert!(text.contains("gtserve_requests_total 5"));
        assert!(text.contains("# TYPE gtserve_latency_seconds histogram"));
        assert!(text.contains("gtserve_latency_seconds_count 2"));
        assert!(text.contains("gtserve_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text
            .contains("gtserve_stage_latency_seconds_count{algo=\"cascade\",stage=\"engine\"} 1"));
        assert!(text.contains("gtserve_engine_work_total{algo=\"cascade\",counter=\"leaves\"} 64"));
        assert!(text.contains("gtserve_engine_max_width{algo=\"cascade\"} 4"));
        assert!(text.contains("gtserve_cache_shard_entries{shard=\"1\"} 1"));
        assert!(text.contains("gtserve_executor_queued 3"));
        assert!(text.contains("gtserve_flights_inflight 1"));
        assert!(text.contains("gtserve_engine_par_steals_total 11"));
        assert!(text.contains("gtserve_engine_par_retires_total 3"));
        assert!(text.contains("gtserve_engine_par_window_narrowings_total 7"));
        assert!(text.contains("gtserve_engine_par_grants_total 1"));
        assert!(text.contains("gtserve_engine_par_grant_threads_total 4"));
        assert!(text.contains("gtserve_build_info{version=\""));
        assert!(text.contains("gtserve_io_loop_iterations_total{loop=\"0\"} 1"));
        assert!(text.contains("gtserve_io_loop_wait_seconds_total{loop=\"0\"} 0.0009"));
        assert!(text.contains("gtserve_io_loop_connections{loop=\"0\"} 2"));
        assert!(text.contains("gtserve_io_loop_outbox_bytes{loop=\"0\"} 512"));
        assert!(text.contains("gtserve_io_loop_lag_seconds_count{loop=\"0\"} 1"));
        assert!(text.contains("# TYPE gtserve_executor_queue_depth histogram"));
        // Depth buckets are unitless: both samples (3 and 5) sit at or
        // below the le="8" bound, and the sum is raw jobs not seconds.
        assert!(text.contains("gtserve_executor_queue_depth_bucket{le=\"8\"} 2"));
        assert!(text.contains("gtserve_executor_queue_depth_sum 8"));
        // Buckets are cumulative: each bucket line's value never
        // decreases as le grows.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("gtserve_latency_seconds_bucket{le=\"") {
                let v: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(v >= last, "non-cumulative: {line}");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn metrics_listener_serves_the_exposition() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "gtserve_up 1\n".to_string());
        let listener = spawn_metrics_listener("127.0.0.1:0", render).unwrap();
        let addr = listener.local_addr();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("text/plain; version=0.0.4"));
        assert!(reply.ends_with("gtserve_up 1\n"), "{reply}");
        listener.shutdown();
    }
}
