//! Cache snapshot files: serialize the LRU shards on drain, restore
//! them on boot, so a replica restart no longer means a cold cache
//! (and a fleet failover no longer means a cold storm).
//!
//! ## Format
//!
//! A snapshot is NDJSON — one header line, then one line per entry:
//!
//! ```text
//! {"snapshot_version":1,"saved_unix_ms":1754700000000,"entries":412}
//! {"key":"worst:d=2,n=8|cascade:w=1","age_ms":1200,"value":1,"leaves":64,...}
//! ```
//!
//! Entries are written most-recently-used first (the shard export
//! order), so a truncated read restores the hottest keys.  The header
//! carries the wall-clock save time: on restore, every entry's age is
//! advanced by the downtime, and anything at or past the cache TTL is
//! dropped by [`ShardedCache::insert_aged`] instead of resurrected —
//! a snapshot can age out on the shelf, never un-expire.
//!
//! The file is written to `<path>.tmp` and renamed into place, so a
//! crash mid-write leaves the previous snapshot intact.  An
//! unreadable or version-mismatched snapshot is reported, not
//! fatal — the server simply boots cold, exactly as before.

use crate::cache::ShardedCache;
use crate::workload::EvalOutcome;
use gt_analysis::Json;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Snapshot format revision; bumped on any incompatible change.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The result cache as the snapshot layer sees it.
pub type SnapshotCache = ShardedCache<String, EvalOutcome>;

/// What a restore did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Entries inserted into the cache.
    pub restored: usize,
    /// Entries dropped — TTL-expired (age + downtime past the TTL) or
    /// refused by a zero-capacity cache.
    pub dropped: usize,
    /// Unparseable entry lines skipped.
    pub skipped: usize,
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// One cache entry as JSON — the shape shared by snapshot file lines
/// and `op:"cachepull"` reply entries, so a warm-fill peer and a
/// snapshot restore go through the same codec.
pub fn entry_json(key: &str, outcome: &EvalOutcome, age: Duration) -> Json {
    Json::obj([
        ("key", Json::from(key)),
        (
            "age_ms",
            Json::from(age.as_millis().min(u64::MAX as u128) as u64),
        ),
        ("value", Json::from(outcome.value)),
        ("leaves", Json::from(outcome.work)),
        ("steps", Json::from(outcome.steps)),
        ("max_width", Json::from(outcome.max_width)),
        ("pruned", Json::from(outcome.pruned)),
        ("steals", Json::from(outcome.steals)),
        ("retired", Json::from(outcome.retired)),
        ("narrowed", Json::from(outcome.narrowings)),
    ])
}

/// Decode one [`entry_json`] object back to `(key, outcome, age_ms)`.
/// Returns `None` on a malformed entry — callers skip, never fail.
pub fn entry_from(j: &Json) -> Option<(String, EvalOutcome, u64)> {
    let key = j.get("key")?.as_str()?.to_string();
    let age_ms = j.get("age_ms").and_then(Json::as_u64).unwrap_or(0);
    let value = j
        .get("value")
        .and_then(Json::as_int)
        .and_then(|v| i64::try_from(v).ok())?;
    let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    Some((
        key,
        EvalOutcome {
            value,
            work: u("leaves"),
            steps: u("steps"),
            max_width: u("max_width").min(u32::MAX as u64) as u32,
            pruned: u("pruned"),
            steals: u("steals"),
            retired: u("retired"),
            narrowings: u("narrowed"),
        },
        age_ms,
    ))
}

/// Serialize every live cache entry to `path` (atomically, via a
/// `.tmp` rename).  Returns the number of entries written.
pub fn save(path: &Path, cache: &SnapshotCache) -> std::io::Result<usize> {
    let entries = cache.export(0);
    let tmp = path.with_extension("tmp");
    {
        let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
        let header = Json::obj([
            ("snapshot_version", Json::from(SNAPSHOT_VERSION)),
            ("saved_unix_ms", Json::from(now_unix_ms())),
            ("entries", Json::from(entries.len() as u64)),
        ]);
        writeln!(w, "{}", header.render())?;
        for (key, outcome, age) in &entries {
            writeln!(w, "{}", entry_json(key, outcome, *age).render())?;
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(entries.len())
}

/// Restore a snapshot into `cache`.  Entry ages are advanced by the
/// wall-clock downtime since the save; TTL-expired entries are
/// dropped on load.  Fails only on I/O or a bad header — a damaged
/// entry line is skipped and counted, never fatal.
pub fn load(path: &Path, cache: &SnapshotCache) -> std::io::Result<RestoreReport> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .transpose()?
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty snapshot"))?;
    let header = Json::parse(&header_line)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let version = header
        .get("snapshot_version")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if version != SNAPSHOT_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("snapshot version {version} (want {SNAPSHOT_VERSION})"),
        ));
    }
    let saved_unix_ms = header
        .get("saved_unix_ms")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let downtime_ms = now_unix_ms().saturating_sub(saved_unix_ms);
    let mut report = RestoreReport::default();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Some((key, outcome, age_ms)) = Json::parse(&line).ok().as_ref().and_then(entry_from)
        else {
            report.skipped += 1;
            continue;
        };
        let age = Duration::from_millis(age_ms.saturating_add(downtime_ms));
        if cache.insert_aged(key, outcome, age) {
            report.restored += 1;
        } else {
            report.dropped += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(value: i64, work: u64) -> EvalOutcome {
        EvalOutcome {
            value,
            work,
            steps: 3,
            max_width: 2,
            pruned: 1,
            steals: 0,
            retired: 0,
            narrowings: 0,
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gt-snapshot-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn snapshot_round_trip_restores_the_identical_hit_set() {
        let path = tmp_path("roundtrip");
        let a: SnapshotCache = ShardedCache::with_ttl(64, 4, None);
        for i in 0..12i64 {
            a.insert(format!("worst:d=2,n={i}|seq-solve"), outcome(i, 1 << i));
        }
        let written = save(&path, &a).unwrap();
        assert_eq!(written, 12);

        let b: SnapshotCache = ShardedCache::with_ttl(64, 4, None);
        let report = load(&path, &b).unwrap();
        assert_eq!(report.restored, 12);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.skipped, 0);
        for i in 0..12i64 {
            let got = b.get(&format!("worst:d=2,n={i}|seq-solve"));
            assert_eq!(got, Some(outcome(i, 1 << i)), "key {i}");
        }
        assert_eq!(b.len(), a.len(), "identical hit set");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ttl_expired_entries_are_dropped_on_load() {
        let path = tmp_path("ttl");
        let ttl = Some(Duration::from_millis(40));
        let a: SnapshotCache = ShardedCache::with_ttl(64, 2, ttl);
        a.insert("fresh|seq-solve".into(), outcome(1, 4));
        save(&path, &a).unwrap();
        // Sit on the shelf past the TTL: downtime alone expires it.
        std::thread::sleep(Duration::from_millis(60));
        let b: SnapshotCache = ShardedCache::with_ttl(64, 2, ttl);
        let report = load(&path, &b).unwrap();
        assert_eq!(report.restored, 0);
        assert_eq!(report.dropped, 1, "aged out during downtime");
        assert!(b.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_and_garbage_are_contained() {
        let path = tmp_path("bad");
        std::fs::write(&path, "{\"snapshot_version\":99}\n").unwrap();
        let c: SnapshotCache = ShardedCache::new(16, 2);
        assert!(load(&path, &c).is_err(), "wrong version is an error");

        std::fs::write(
            &path,
            "{\"snapshot_version\":1,\"saved_unix_ms\":0}\nnot json\n{\"key\":\"k|a\",\"value\":2}\n",
        )
        .unwrap();
        let report = load(&path, &c).unwrap();
        assert_eq!(report.skipped, 1, "garbage line skipped");
        assert_eq!(report.restored, 1, "valid line restored");
        assert_eq!(c.get(&"k|a".to_string()).map(|o| o.value), Some(2));
        let _ = std::fs::remove_file(&path);
    }
}
