//! A bounded request queue with explicit backpressure.
//!
//! Thin wrapper over [`std::sync::mpsc::sync_channel`] that turns the
//! channel's blocking semantics into load-shedding ones: producers
//! never wait — a full queue is reported immediately so the caller can
//! reject the request (the serving layer's 429-style `busy` reply)
//! instead of queueing unbounded work it cannot finish in time.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// All consumers are gone; the item is handed back.
    Closed(T),
}

/// The producing half of a bounded queue.
pub struct BoundedSender<T> {
    inner: SyncSender<T>,
}

// Manual impl: `#[derive(Clone)]` would needlessly require `T: Clone`.
impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        BoundedSender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> BoundedSender<T> {
    /// Push without blocking; a full or closed queue returns the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        self.inner.try_send(item).map_err(|e| match e {
            TrySendError::Full(item) => PushError::Full(item),
            TrySendError::Disconnected(item) => PushError::Closed(item),
        })
    }
}

/// Create a queue holding at most `depth` items (`depth` is clamped to
/// at least 1 — a zero-capacity rendezvous channel would make every
/// uncontended push fail).
pub fn bounded<T>(depth: usize) -> (BoundedSender<T>, Receiver<T>) {
    let (tx, rx) = sync_channel(depth.max(1));
    (BoundedSender { inner: tx }, rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_when_full_and_recovers_after_pop() {
        let (tx, rx) = bounded(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(PushError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_push(4).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 4);
    }

    #[test]
    fn zero_depth_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_push("only").unwrap();
        assert!(matches!(tx.try_push("extra"), Err(PushError::Full(_))));
        assert_eq!(rx.recv().unwrap(), "only");
    }

    #[test]
    fn closed_queue_reports_closed() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.try_push(9), Err(PushError::Closed(9)));
    }

    #[test]
    fn clones_share_capacity() {
        let (tx, _rx) = bounded(1);
        let tx2 = tx.clone();
        tx.try_push(1).unwrap();
        assert!(matches!(tx2.try_push(2), Err(PushError::Full(_))));
    }
}
