//! Property tests for the executor's queue discipline ([`Scheduler`]):
//! random push/pop interleavings must preserve FIFO order within every
//! `(algorithm, class)` band, the small-before-large priority, the
//! batching invariants (one algorithm, one class, at most `batch_max`
//! jobs per dispatch), the exact global capacity bound, and cancel
//! isolation between batchmates.
//!
//! The scheduler is pure (no threads, no locks), so these properties
//! check the discipline itself rather than racing worker timing.

use gt_serve::{CostClass, Scheduler};
use proptest::prelude::*;

/// One scripted operation against the scheduler.
#[derive(Debug, Clone)]
enum Op {
    Push { algo: usize, small: bool },
    Pop,
}

fn op_strategy(algos: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..algos, any::<bool>()).prop_map(|(algo, small)| Op::Push { algo, small }),
        2 => Just(Op::Pop),
    ]
}

const ALGO_NAMES: [&str; 4] = ["seq-solve", "parallel-solve", "round", "cascade"];

/// A job as the properties see it: which queue it went to, its class,
/// and its arrival number within that `(algo, class)` band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    algo: usize,
    small: bool,
    seq: usize,
}

proptest! {
    /// The full discipline under random interleavings:
    ///  * a dispatch never mixes algorithms or classes and never
    ///    exceeds `batch_max` jobs;
    ///  * a large job dispatches alone;
    ///  * a large job is dispatched only when no small job is queued;
    ///  * within one `(algo, class)` band, jobs leave in arrival order;
    ///  * nothing is lost or duplicated;
    ///  * the queue never exceeds its capacity, and a push fails
    ///    exactly when the queue is at capacity.
    #[test]
    fn discipline_holds_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(ALGO_NAMES.len()), 1..200),
        capacity in 1usize..32,
        batch_max in 1usize..8,
    ) {
        let mut sched: Scheduler<Job> = Scheduler::new(capacity);
        let mut next_seq = vec![[0usize; 2]; ALGO_NAMES.len()];
        let mut popped_seq = vec![[0usize; 2]; ALGO_NAMES.len()];
        let mut pushed = 0usize;
        let mut popped = 0usize;
        let mut queued_small = 0usize;

        for op in ops {
            match op {
                Op::Push { algo, small } => {
                    let band = usize::from(small);
                    let job = Job { algo, small, seq: next_seq[algo][band] };
                    let class = if small { CostClass::Small } else { CostClass::Large };
                    let was_full = sched.len() >= capacity;
                    match sched.push(ALGO_NAMES[algo], class, job) {
                        Ok(()) => {
                            prop_assert!(!was_full, "push admitted past capacity");
                            next_seq[algo][band] += 1;
                            pushed += 1;
                            if small { queued_small += 1; }
                        }
                        Err(returned) => {
                            prop_assert!(was_full, "push refused below capacity");
                            prop_assert_eq!(returned, job, "refused push must hand the job back");
                        }
                    }
                }
                Op::Pop => {
                    let before = sched.len();
                    let batch = sched.pop_batch(batch_max);
                    prop_assert_eq!(sched.len(), before - batch.len());
                    if batch.is_empty() {
                        prop_assert_eq!(before, 0, "pop returned nothing while jobs were queued");
                        continue;
                    }
                    prop_assert!(batch.len() <= batch_max);
                    let algo = batch[0].algo;
                    let small = batch[0].small;
                    if !small {
                        prop_assert_eq!(batch.len(), 1, "large jobs dispatch alone");
                        prop_assert_eq!(queued_small, 0,
                            "a large job dispatched while small work was queued");
                    }
                    let band = usize::from(small);
                    for job in &batch {
                        prop_assert_eq!(job.algo, algo, "batch mixed algorithms");
                        prop_assert_eq!(job.small, small, "batch mixed priority classes");
                        prop_assert_eq!(job.seq, popped_seq[algo][band],
                            "band served out of arrival order");
                        popped_seq[algo][band] += 1;
                    }
                    popped += batch.len();
                    if small { queued_small -= batch.len(); }
                }
            }
            prop_assert!(sched.len() <= capacity);
            prop_assert_eq!(sched.len(), pushed - popped, "len out of sync with traffic");
        }

        // Drain: everything pushed eventually comes back out, in order.
        loop {
            let batch = sched.pop_batch(batch_max);
            if batch.is_empty() { break; }
            let band = usize::from(batch[0].small);
            for job in &batch {
                prop_assert_eq!(job.seq, popped_seq[job.algo][band]);
                popped_seq[job.algo][band] += 1;
            }
            popped += batch.len();
        }
        prop_assert_eq!(popped, pushed, "jobs lost or duplicated");
        prop_assert!(sched.is_empty());
    }

    /// Cancel isolation: batchmates are independent.  Marking an
    /// arbitrary subset of jobs cancelled and skipping them at dispatch
    /// (exactly what the server's `run_batch` does with each job's
    /// flight flag) still runs every non-cancelled job exactly once —
    /// a cancelled job never takes its batchmates down with it.
    #[test]
    fn cancelled_jobs_do_not_affect_their_batchmates(
        cancelled in proptest::collection::vec(any::<bool>(), 1..64),
        batch_max in 1usize..8,
    ) {
        let mut sched: Scheduler<(usize, bool)> = Scheduler::new(cancelled.len());
        for (i, &c) in cancelled.iter().enumerate() {
            sched.push("algo", CostClass::Small, (i, c)).unwrap();
        }
        let mut ran = vec![0usize; cancelled.len()];
        loop {
            let batch = sched.pop_batch(batch_max);
            if batch.is_empty() { break; }
            for (i, c) in batch {
                if !c {
                    ran[i] += 1;
                }
            }
        }
        for (i, &c) in cancelled.iter().enumerate() {
            prop_assert_eq!(ran[i], usize::from(!c),
                "job {} ran {} times (cancelled: {})", i, ran[i], c);
        }
    }
}
