//! # gt-core — parallel game-tree evaluation (Karp & Zhang, SPAA 1989)
//!
//! This crate is the adoptable library form of the paper's contribution:
//!
//! * [`engine::RoundEngine`] — Parallel SOLVE / Parallel α-β of width
//!   `w` as a round-synchronous threaded engine whose step counts match
//!   the paper's model exactly;
//! * [`engine::CascadeEngine`] — the fork-join realization of the
//!   `P-SOLVE` program (parallel left subtree, sequential look-ahead
//!   siblings, pre-emption on decisive results);
//! * [`engine::best_move`] — move selection for real games on top of the
//!   cascade engine;
//! * [`theory`] — every bound and constant from the paper's analysis
//!   (Facts 1–2, Propositions 3/4/6, Lemmas 1–2), computable, so
//!   experiments can print "measured vs. bound" tables.
//!
//! ## Quick start
//!
//! ```
//! use gt_core::engine::RoundEngine;
//! use gt_tree::gen::UniformSource;
//!
//! // A uniform binary NOR tree of height 12 with i.i.d. leaves.
//! let tree = UniformSource::nor_critical(2, 12, 42);
//! let result = RoundEngine::with_width(1).solve_nor(&tree);
//! assert!(result.value == 0 || result.value == 1);
//! // Rounds = the paper's P(T); compare with S(T):
//! let seq = gt_tree::minimax::seq_solve(&tree, false);
//! assert!(result.rounds <= seq.leaves_evaluated);
//! ```

pub mod engine;
pub mod theory;

pub use engine::{best_move, CascadeEngine, EngineResult, RoundEngine, SearchConfig};

// Re-export the foundational crates so `gt-core` is self-sufficient as a
// single dependency for downstream users.
pub use gt_games as games;
pub use gt_sim as sim;
pub use gt_tree as tree;
