//! MTD(f): the memory-enhanced test driver (Plaat et al.) — computes
//! the exact minimax value through a sequence of zero-window α-β
//! searches around a converging guess, with the transposition table
//! carrying information between passes.
//!
//! Included as the strongest classical sequential baseline (the lineage
//! SSS\* was later shown equivalent to): every zero-window pass is a
//! Boolean test like SCOUT's, but the table remembers partial results,
//! so nothing is re-derived from scratch.

use super::memo::TtSearch;
use gt_games::Game;
use gt_tree::Value;
use std::hash::Hash;

/// Statistics from an MTD(f) run.
#[derive(Debug, Clone, Default)]
pub struct MtdfStats {
    /// Zero-window passes performed.
    pub passes: u32,
    /// Horizon/terminal evaluations across all passes (table hits
    /// excluded).
    pub evals: u64,
}

/// Compute the exact value of `state` at `depth` using MTD(f) with the
/// given first guess.  Returns `(value, stats)`.
pub fn mtdf<G: Game>(
    tt: &mut TtSearch<G>,
    state: &G::State,
    depth: u32,
    first_guess: Value,
) -> (Value, MtdfStats)
where
    G::State: Eq + Hash + Clone,
{
    let mut stats = MtdfStats::default();
    let mut g = first_guess;
    let mut lower = Value::MIN;
    let mut upper = Value::MAX;
    while lower < upper {
        stats.passes += 1;
        // Zero-window test at beta (fail-soft bounds move g).
        let beta = if g == lower { g + 1 } else { g };
        let evals_before = tt.stats.evals;
        let v = tt.search_window(state, depth, beta - 1, beta);
        stats.evals += tt.stats.evals - evals_before;
        if v < beta {
            upper = v;
        } else {
            lower = v;
        }
        g = v;
        debug_assert!(stats.passes < 1_000, "MTD(f) failed to converge");
    }
    (g, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_games::{Connect4, Game, GameTreeSource, Nim, NimState, TicTacToe};
    use gt_tree::minimax::seq_alphabeta;

    #[test]
    fn matches_alphabeta_on_tictactoe() {
        for depth in [3u32, 5, 9] {
            let mut tt = TtSearch::new(TicTacToe, 1 << 20);
            let (v, stats) = mtdf(&mut tt, &TicTacToe.initial(), depth, 0);
            let src = GameTreeSource::from_initial(TicTacToe, depth);
            assert_eq!(v, seq_alphabeta(&src, false).value, "depth {depth}");
            assert!(stats.passes >= 1);
        }
    }

    #[test]
    fn matches_alphabeta_on_connect4_regardless_of_guess() {
        let g = Connect4::default();
        let src = GameTreeSource::from_initial(g, 5);
        let truth = seq_alphabeta(&src, false).value;
        for guess in [-500i64, 0, 7, 500] {
            let mut tt = TtSearch::new(g, 1 << 20);
            let (v, _) = mtdf(&mut tt, &g.initial(), 5, guess);
            assert_eq!(v, truth, "guess {guess}");
        }
    }

    #[test]
    fn good_guess_converges_in_few_passes() {
        let g = Connect4::default();
        let src = GameTreeSource::from_initial(g, 5);
        let truth = seq_alphabeta(&src, false).value;
        let mut tt = TtSearch::new(g, 1 << 20);
        let (_, good) = mtdf(&mut tt, &g.initial(), 5, truth);
        let mut tt = TtSearch::new(g, 1 << 20);
        let (_, bad) = mtdf(&mut tt, &g.initial(), 5, truth + 400);
        assert!(
            good.passes <= bad.passes,
            "exact guess {} vs far guess {}",
            good.passes,
            bad.passes
        );
        assert!(good.passes <= 3, "exact guess should converge fast");
    }

    #[test]
    fn nim_mtdf_matches_bouton() {
        let g = Nim::default();
        let s = NimState::new(vec![1, 2, 3]);
        let depth: u32 = 7;
        let mut tt = TtSearch::new(g, 1 << 16);
        let (v, _) = mtdf(&mut tt, &s, depth, 0);
        let theory = if s.mover_wins(None) { 1 } else { -1 };
        assert_eq!(v, theory);
    }

    #[test]
    fn mtdf_total_evals_is_competitive_with_plain_tt_search() {
        // The zero-window passes plus table reuse should not blow up
        // relative to one full-window TT search.
        let g = Connect4::default();
        let depth = 6u32;
        let mut full = TtSearch::new(g, 1 << 22);
        let _ = full.search(&g.initial(), depth);
        let full_evals = full.stats.evals;
        let mut tt = TtSearch::new(g, 1 << 22);
        let (_, stats) = mtdf(&mut tt, &g.initial(), depth, 0);
        assert!(
            stats.evals <= 3 * full_evals,
            "MTD(f) {} vs full-window {}",
            stats.evals,
            full_evals
        );
    }
}
