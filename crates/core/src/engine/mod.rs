//! Threaded engines: the paper's algorithms on real processors.
//!
//! Two implementation strategies are provided, mirroring the two ways
//! the paper describes its algorithms:
//!
//! * [`round`] — the *global* view ("at each step, evaluate all live
//!   leaves with pruning number ≤ w"): a round-synchronous engine that
//!   computes the exact frontier of the step-driven simulation and
//!   evaluates it with a rayon thread pool.  Step counts match the
//!   model simulation exactly, so the model-level speed-ups of
//!   Theorem 1/3 translate to wall-clock whenever leaf evaluation
//!   dominates.
//! * [`cascade`] — the *top-down* view (program `P-SOLVE`: parallel on
//!   the leftmost live subtree, sequential look-ahead on its right
//!   siblings, with aborts): a fork-join engine built on `rayon::join`
//!   and cancellation flags.  It approximates the dynamic re-budgeting
//!   of pruning numbers with static budgets (child `j` of a batch gets
//!   width `w−j`), which keeps it lock-free; correctness is exact,
//!   step-optimality is approximate.  See DESIGN.md §5.
//!
//! [`gameplay`] drives either engine for move selection in real games.

pub mod cascade;
pub mod gameplay;
pub mod iterative;
pub mod memo;
pub mod mtdf;
pub mod round;
pub mod ybw;

pub use cascade::{Cancelled, CascadeEngine};
pub use gameplay::{best_move, SearchConfig};
pub use iterative::{iterative_best_move, DeepeningConfig, DeepeningOutcome};
pub use memo::{TtSearch, TtStats};
pub use mtdf::{mtdf, MtdfStats};
pub use round::{EngineResult, RoundEngine};
pub use ybw::YbwEngine;
