//! Transposition-table α-β for games whose positions transpose (the
//! same position reached by different move orders — ubiquitous in
//! Connect Four, Nim, and chess-like games).
//!
//! The paper's tree model treats every node as distinct; a practical
//! engine (Section 8's "game trees occurring in practice") collapses
//! transpositions with a hash table keyed on position.  This module
//! provides a sequential fail-soft α-β with a bounded transposition
//! table, usable as the strongest sequential baseline in the game
//! benchmarks.

use gt_games::Game;
use gt_tree::Value;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};

use super::cascade::Cancelled;

/// Entry bound type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bound {
    Exact,
    /// Value is a lower bound (search failed high).
    Lower,
    /// Value is an upper bound (search failed low).
    Upper,
}

#[derive(Debug, Clone, Copy)]
struct TtEntry {
    depth: u32,
    value: Value,
    bound: Bound,
}

/// Statistics from a transposition-table search.
#[derive(Debug, Clone, Default)]
pub struct TtStats {
    /// Positions whose evaluation was answered from the table.
    pub hits: u64,
    /// Positions searched and stored.
    pub stores: u64,
    /// Horizon/terminal evaluations performed.
    pub evals: u64,
}

/// A reusable transposition-table searcher for a game.
pub struct TtSearch<G: Game>
where
    G::State: Eq + Hash,
{
    game: G,
    table: HashMap<G::State, TtEntry>,
    /// Maximum number of entries kept (a full table stops storing; a
    /// production engine would use replacement, which is orthogonal to
    /// correctness here).
    capacity: usize,
    /// Accumulated counters.
    pub stats: TtStats,
}

impl<G: Game> TtSearch<G>
where
    G::State: Eq + Hash,
{
    /// A searcher with the given table capacity.
    pub fn new(game: G, capacity: usize) -> Self {
        TtSearch {
            game,
            table: HashMap::new(),
            capacity,
            stats: TtStats::default(),
        }
    }

    /// Clear the table (keep the capacity).
    pub fn clear(&mut self) {
        self.table.clear();
        self.stats = TtStats::default();
    }

    /// Entries currently stored.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Fail-soft α-β with transpositions, from the first player's
    /// (absolute) perspective; `depth` is the remaining horizon.
    pub fn search(&mut self, state: &G::State, depth: u32) -> Value {
        self.ab(state, depth, Value::MIN, Value::MAX, None)
            .expect("search without a cancel flag cannot be cancelled")
    }

    /// Like [`TtSearch::search`], but aborts when `cancel` becomes
    /// `true`; the flag is checked at every interior node.  The table
    /// keeps whatever entries the aborted search stored — they are all
    /// sound bounds, so a retry starts warm.
    pub fn search_cancellable(
        &mut self,
        state: &G::State,
        depth: u32,
        cancel: &AtomicBool,
    ) -> Result<Value, Cancelled> {
        self.ab(state, depth, Value::MIN, Value::MAX, Some(cancel))
    }

    /// Fail-soft α-β over an explicit window — the zero-window probe
    /// MTD(f) is built from.
    pub fn search_window(
        &mut self,
        state: &G::State,
        depth: u32,
        alpha: Value,
        beta: Value,
    ) -> Value {
        assert!(alpha < beta, "degenerate window");
        self.ab(state, depth, alpha, beta, None)
            .expect("search without a cancel flag cannot be cancelled")
    }

    fn ab(
        &mut self,
        state: &G::State,
        depth: u32,
        mut alpha: Value,
        mut beta: Value,
        cancel: Option<&AtomicBool>,
    ) -> Result<Value, Cancelled> {
        if let Some(flag) = cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
        }
        let n = self.game.num_moves(state);
        if depth == 0 || n == 0 {
            self.stats.evals += 1;
            return Ok(self.game.evaluate(state));
        }
        if let Some(e) = self.table.get(state) {
            if e.depth >= depth {
                match e.bound {
                    Bound::Exact => {
                        self.stats.hits += 1;
                        return Ok(e.value);
                    }
                    Bound::Lower if e.value >= beta => {
                        self.stats.hits += 1;
                        return Ok(e.value);
                    }
                    Bound::Upper if e.value <= alpha => {
                        self.stats.hits += 1;
                        return Ok(e.value);
                    }
                    _ => {}
                }
            }
        }
        let maximizing = self.game.first_player_to_move(state);
        let (orig_alpha, orig_beta) = (alpha, beta);
        let mut best = if maximizing { Value::MIN } else { Value::MAX };
        for i in 0..n {
            let child = self.game.apply(state, i);
            let v = self.ab(&child, depth - 1, alpha, beta, cancel)?;
            if maximizing {
                best = best.max(v);
                alpha = alpha.max(best);
            } else {
                best = best.min(v);
                beta = beta.min(best);
            }
            if alpha >= beta {
                break;
            }
        }
        let bound = if best <= orig_alpha {
            Bound::Upper
        } else if best >= orig_beta {
            Bound::Lower
        } else {
            Bound::Exact
        };
        if self.table.len() < self.capacity || self.table.contains_key(state) {
            self.table.insert(
                state.clone(),
                TtEntry {
                    depth,
                    value: best,
                    bound,
                },
            );
            self.stats.stores += 1;
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_games::{Connect4, Game, GameTreeSource, Nim, NimState, TicTacToe};
    use gt_tree::minimax::seq_alphabeta;

    #[test]
    fn matches_plain_alphabeta_on_tictactoe() {
        for depth in [3u32, 5, 9] {
            let mut tt = TtSearch::new(TicTacToe, 1 << 20);
            let v = tt.search(&TicTacToe.initial(), depth);
            let src = GameTreeSource::from_initial(TicTacToe, depth);
            assert_eq!(v, seq_alphabeta(&src, false).value, "depth {depth}");
        }
    }

    #[test]
    fn matches_plain_alphabeta_on_connect4() {
        for depth in [4u32, 6] {
            let g = Connect4::default();
            let mut tt = TtSearch::new(g, 1 << 20);
            let v = tt.search(&g.initial(), depth);
            let src = GameTreeSource::from_initial(g, depth);
            assert_eq!(v, seq_alphabeta(&src, false).value, "depth {depth}");
        }
    }

    #[test]
    fn transpositions_reduce_evaluations() {
        // Connect Four transposes heavily: TT search must evaluate far
        // fewer horizon positions than the tree-shaped search visits
        // leaves.
        let g = Connect4::default();
        let depth = 7u32;
        let mut tt = TtSearch::new(g, 1 << 22);
        let _ = tt.search(&g.initial(), depth);
        let src = GameTreeSource::from_initial(g, depth);
        let tree_leaves = seq_alphabeta(&src, false).leaves_evaluated;
        assert!(
            tt.stats.evals < tree_leaves,
            "TT evals {} should beat tree leaves {tree_leaves}",
            tt.stats.evals
        );
        assert!(tt.stats.hits > 0, "expected transposition hits");
    }

    #[test]
    fn nim_with_tt_matches_bouton() {
        let g = Nim::default();
        for piles in [vec![1, 2], vec![2, 2], vec![1, 2, 3]] {
            let s = NimState::new(piles.clone());
            let depth: u32 = piles.iter().sum::<u32>() + 1;
            let mut tt = TtSearch::new(g, 1 << 16);
            let v = tt.search(&s, depth);
            let mover_wins = s.mover_wins(None);
            let theory = if mover_wins { 1 } else { -1 };
            assert_eq!(v, theory, "{piles:?}");
        }
    }

    #[test]
    fn cancellable_search_aborts_and_agrees_when_idle() {
        let g = Connect4::default();
        let mut tt = TtSearch::new(g, 1 << 18);
        let flag = AtomicBool::new(true);
        assert!(matches!(
            tt.search_cancellable(&g.initial(), 6, &flag),
            Err(Cancelled)
        ));
        // Aborted searches leave only sound entries behind: a fresh
        // uncancelled search from the same table is still exact.
        flag.store(false, Ordering::Relaxed);
        let v = tt.search_cancellable(&g.initial(), 5, &flag).unwrap();
        let mut fresh = TtSearch::new(g, 1 << 18);
        assert_eq!(v, fresh.search(&g.initial(), 5));
    }

    #[test]
    fn mid_search_cancellation_returns_quickly() {
        let g = Connect4::default();
        let mut tt = TtSearch::new(g, 1 << 20);
        let flag = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(15));
                flag.store(true, Ordering::Relaxed);
            });
            // Deep enough to outlast the timer by a wide margin.
            let r = tt.search_cancellable(&g.initial(), 14, &flag);
            assert!(matches!(r, Err(Cancelled)));
        });
    }

    #[test]
    fn capacity_zero_still_correct() {
        // With no storage the search degrades to plain alpha-beta.
        let mut tt = TtSearch::new(TicTacToe, 0);
        let v = tt.search(&TicTacToe.initial(), 5);
        let src = GameTreeSource::from_initial(TicTacToe, 5);
        assert_eq!(v, seq_alphabeta(&src, false).value);
        assert_eq!(tt.table_len(), 0);
    }

    #[test]
    fn clear_resets_state() {
        let mut tt = TtSearch::new(TicTacToe, 1 << 16);
        let _ = tt.search(&TicTacToe.initial(), 5);
        assert!(tt.table_len() > 0);
        tt.clear();
        assert_eq!(tt.table_len(), 0);
        assert_eq!(tt.stats.hits, 0);
    }

    #[test]
    fn deeper_entries_answer_shallower_queries() {
        let g = Connect4::default();
        let mut tt = TtSearch::new(g, 1 << 20);
        let deep = tt.search(&g.initial(), 6);
        let hits_before = tt.stats.hits;
        // A shallower re-search should hit the root entry immediately.
        let shallow = tt.search(&g.initial(), 4);
        assert!(tt.stats.hits > hits_before);
        // Values may differ between horizons (different evaluations) —
        // but a depth-6 exact entry is acceptable for a depth-4 query,
        // so the shallow result equals the deep one here.
        assert_eq!(shallow, deep);
    }
}
