//! Move selection for real games using the parallel engines.
//!
//! This is the "game-playing program" layer the paper hopes its
//! algorithms will speed up (Section 8): depth-limited search over a
//! [`gt_games::Game`], each root move scored by a cascade-parallel α-β
//! search of its subtree, with the root window narrowing left to right
//! exactly as sequential α-β would.

use super::cascade::CascadeEngine;
use gt_games::{Game, GameTreeSource};
use gt_tree::Value;

/// Search parameters for [`best_move`].
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Search horizon in plies (≥ 1).
    pub depth: u32,
    /// Parallel width of the engine (0 = sequential search).
    pub width: u32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { depth: 6, width: 1 }
    }
}

/// Pick the best move for the side to move in `state`.
///
/// Returns `None` on terminal positions, otherwise `(move_index, value)`
/// where the value is from the first player's (absolute) perspective.
pub fn best_move<G: Game + Clone>(
    game: &G,
    state: &G::State,
    config: SearchConfig,
) -> Option<(u32, Value)> {
    assert!(config.depth >= 1, "need at least one ply to pick a move");
    let n = game.num_moves(state);
    if n == 0 {
        return None;
    }
    let maximizing = game.first_player_to_move(state);
    let engine = CascadeEngine::with_width(config.width);
    let mut alpha = Value::MIN;
    let mut beta = Value::MAX;
    let mut best: Option<(u32, Value)> = None;
    for i in 0..n {
        let child = game.apply(state, i);
        let src = GameTreeSource::new(game.clone(), child, config.depth - 1);
        let v = engine
            .alphabeta_window(&src, alpha, beta, !maximizing)
            .expect("root-level search is never pre-empted");
        let better = match best {
            None => true,
            Some((_, bv)) => {
                if maximizing {
                    v > bv
                } else {
                    v < bv
                }
            }
        };
        if better {
            best = Some((i, v));
        }
        if maximizing {
            alpha = alpha.max(v);
        } else {
            beta = beta.min(v);
        }
        if alpha >= beta {
            break;
        }
    }
    best
}

/// Play a full game between two configurations; returns the final state
/// and the move list.  Used by examples and integration tests.
pub fn play_out<G: Game + Clone>(
    game: &G,
    first: SearchConfig,
    second: SearchConfig,
    max_plies: u32,
) -> (G::State, Vec<u32>) {
    let mut state = game.initial();
    let mut moves = Vec::new();
    for ply in 0..max_plies {
        let cfg = if ply % 2 == 0 { first } else { second };
        match best_move(game, &state, cfg) {
            Some((m, _)) => {
                state = game.apply(&state, m);
                moves.push(m);
            }
            None => break,
        }
    }
    (state, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_games::tictactoe::Board;
    use gt_games::{Connect4, TicTacToe};

    #[test]
    fn terminal_position_has_no_move() {
        let won = Board {
            x: 0b000_000_111,
            o: 0b000_011_000,
        };
        assert!(best_move(&TicTacToe, &won, SearchConfig::default()).is_none());
    }

    #[test]
    fn finds_immediate_win() {
        // X has two in a row (cells 0,1); cell 2 wins.
        let b = Board {
            x: 0b000_000_011,
            o: 0b000_011_000,
        };
        let (mv, v) = best_move(&TicTacToe, &b, SearchConfig { depth: 2, width: 1 }).unwrap();
        // Empty cells ascending: 2,6,7,8 → index 0 is cell 2.
        assert_eq!(mv, 0);
        assert!(v > 0);
    }

    #[test]
    fn blocks_opponent_win_as_minimizer() {
        // O to move; X threatens at cell 2 (has 0,1).  O must block.
        let b = Board {
            x: 0b000_000_011,
            o: 0b000_010_000,
        };
        assert!(!TicTacToe.first_player_to_move(&b));
        let (mv, _) = best_move(&TicTacToe, &b, SearchConfig { depth: 4, width: 1 }).unwrap();
        assert_eq!(mv, 0, "O must take cell 2 (index 0 of empties)");
    }

    #[test]
    fn perfect_tictactoe_self_play_is_a_draw() {
        let cfg = SearchConfig { depth: 9, width: 1 };
        let (final_state, moves) = play_out(&TicTacToe, cfg, cfg, 9);
        assert_eq!(final_state.outcome(), Some(0), "moves: {moves:?}");
        assert_eq!(moves.len(), 9);
    }

    #[test]
    fn sequential_and_parallel_choose_equal_valued_moves() {
        for depth in [3u32, 5] {
            let seqv = best_move(
                &TicTacToe,
                &TicTacToe.initial(),
                SearchConfig { depth, width: 0 },
            )
            .unwrap()
            .1;
            let parv = best_move(
                &TicTacToe,
                &TicTacToe.initial(),
                SearchConfig { depth, width: 2 },
            )
            .unwrap()
            .1;
            assert_eq!(seqv, parv, "depth {depth}");
        }
    }

    #[test]
    fn connect4_sequential_and_parallel_agree_on_value() {
        let g = Connect4::default();
        let seq = best_move(&g, &g.initial(), SearchConfig { depth: 5, width: 0 }).unwrap();
        let par = best_move(&g, &g.initial(), SearchConfig { depth: 5, width: 2 }).unwrap();
        assert!(seq.0 < 7 && par.0 < 7);
        assert_eq!(seq.1, par.1, "root values must agree");
        assert_eq!(seq.0, par.0, "deterministic tie-breaking must agree");
    }
}
