//! Iterative deepening with root move ordering.
//!
//! The paper closes hoping its algorithms "will suggest some efficient
//! parallel programs for evaluating the game trees occurring in
//! practice" (Section 8).  Practical programs search iteratively: depth
//! 1, 2, … up to a budget, re-ordering moves by the previous
//! iteration's scores so that α-β (sequential *or* parallel) sees the
//! likely-best move first and prunes harder.  This driver implements
//! that loop on top of the cascade engine, searching each root move's
//! subtree with the width-`w` parallel α-β.

use super::cascade::CascadeEngine;
use gt_games::{Game, GameTreeSource};
use gt_tree::Value;

/// Configuration for [`iterative_best_move`].
#[derive(Debug, Clone, Copy)]
pub struct DeepeningConfig {
    /// Final search depth (iterations run 1..=max_depth).
    pub max_depth: u32,
    /// Parallel width of the per-move subtree searches.
    pub width: u32,
    /// Aspiration half-window: when `Some(delta)`, each iteration after
    /// the first searches inside `(prev − delta, prev + delta)` first
    /// and re-searches with a full window only if the result falls
    /// outside — the classical trick for deepening searches.  `None`
    /// always uses full windows.
    pub aspiration: Option<Value>,
}

impl Default for DeepeningConfig {
    fn default() -> Self {
        DeepeningConfig {
            max_depth: 6,
            width: 1,
            aspiration: None,
        }
    }
}

/// Statistics for one deepening iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthStats {
    /// The iteration's depth.
    pub depth: u32,
    /// Best move index (into the *original* move numbering).
    pub best_move: u32,
    /// Value from the first player's perspective.
    pub value: Value,
    /// Leaves evaluated during this iteration.
    pub leaves: u64,
}

/// Outcome of an iterative-deepening search.
#[derive(Debug, Clone)]
pub struct DeepeningOutcome {
    /// Final best move and value (from the deepest iteration).
    pub best_move: u32,
    /// Final value.
    pub value: Value,
    /// Per-iteration records.
    pub per_depth: Vec<DepthStats>,
}

impl DeepeningOutcome {
    /// Total leaves across all iterations.
    pub fn total_leaves(&self) -> u64 {
        self.per_depth.iter().map(|d| d.leaves).sum()
    }
}

/// Search `state` by iterative deepening, re-ordering root moves by the
/// previous iteration's scores.  Returns `None` on terminal positions.
pub fn iterative_best_move<G: Game + Clone>(
    game: &G,
    state: &G::State,
    config: DeepeningConfig,
) -> Option<DeepeningOutcome> {
    assert!(config.max_depth >= 1);
    let n = game.num_moves(state);
    if n == 0 {
        return None;
    }
    let maximizing = game.first_player_to_move(state);
    let engine = CascadeEngine::with_width(config.width);
    // Current root move order (indices into the original numbering).
    let mut order: Vec<u32> = (0..n).collect();
    let mut per_depth = Vec::new();
    let mut prev_value: Option<Value> = None;
    for depth in 1..=config.max_depth {
        // One root pass over `order` with the given starting window.
        let search_root = |alpha0: Value, beta0: Value, order: &[u32]| {
            let mut alpha = alpha0;
            let mut beta = beta0;
            let mut leaves = 0u64;
            let mut scored: Vec<(u32, Value)> = Vec::with_capacity(n as usize);
            let mut best: Option<(u32, Value)> = None;
            for &mv in order {
                let child = game.apply(state, mv);
                let src = GameTreeSource::new(game.clone(), child, depth - 1);
                let (v, l) = engine
                    .alphabeta_window_counted(&src, alpha, beta, !maximizing)
                    .expect("root-level search is never pre-empted");
                leaves += l;
                scored.push((mv, v));
                let better = match best {
                    None => true,
                    Some((_, bv)) => {
                        if maximizing {
                            v > bv
                        } else {
                            v < bv
                        }
                    }
                };
                if better {
                    best = Some((mv, v));
                }
                if maximizing {
                    alpha = alpha.max(v);
                } else {
                    beta = beta.min(v);
                }
                if alpha >= beta {
                    break;
                }
            }
            (scored, best, leaves)
        };
        // Aspiration: start from a window around the previous
        // iteration's value; re-search with the full window if the
        // result escapes it (fail-low or fail-high).
        let (asp_alpha, asp_beta) = match (config.aspiration, prev_value) {
            (Some(delta), Some(pv)) => (pv.saturating_sub(delta), pv.saturating_add(delta)),
            _ => (Value::MIN, Value::MAX),
        };
        let (mut scored, mut best, mut leaves) = search_root(asp_alpha, asp_beta, &order);
        if let Some((_, v)) = best {
            let escaped = v <= asp_alpha || v >= asp_beta;
            let windowed = asp_alpha != Value::MIN || asp_beta != Value::MAX;
            if windowed && escaped {
                let (s2, b2, l2) = search_root(Value::MIN, Value::MAX, &order);
                scored = s2;
                best = b2;
                leaves += l2;
            }
        }
        // Moves not searched this iteration (window closed) keep their
        // old relative order behind the searched ones.
        let searched: Vec<u32> = scored.iter().map(|&(m, _)| m).collect();
        let mut next_order: Vec<u32> = {
            let mut s = scored.clone();
            // Best-first for the mover.
            s.sort_by_key(|&(_, v)| if maximizing { -v } else { v });
            s.into_iter().map(|(m, _)| m).collect()
        };
        for &mv in &order {
            if !searched.contains(&mv) {
                next_order.push(mv);
            }
        }
        order = next_order;
        let (best_move, value) = best.expect("at least one move searched");
        prev_value = Some(value);
        per_depth.push(DepthStats {
            depth,
            best_move,
            value,
            leaves,
        });
    }
    let last = *per_depth.last().unwrap();
    Some(DeepeningOutcome {
        best_move: last.best_move,
        value: last.value,
        per_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{best_move, SearchConfig};
    use gt_games::tictactoe::Board;
    use gt_games::{Connect4, TicTacToe};

    #[test]
    fn terminal_position_returns_none() {
        let won = Board {
            x: 0b000_000_111,
            o: 0b000_011_000,
        };
        assert!(iterative_best_move(&TicTacToe, &won, DeepeningConfig::default()).is_none());
    }

    #[test]
    fn final_value_matches_direct_search() {
        for depth in [3u32, 5, 9] {
            let id = iterative_best_move(
                &TicTacToe,
                &TicTacToe.initial(),
                DeepeningConfig {
                    max_depth: depth,
                    width: 1,
                    aspiration: None,
                },
            )
            .unwrap();
            let direct = best_move(
                &TicTacToe,
                &TicTacToe.initial(),
                SearchConfig { depth, width: 1 },
            )
            .unwrap();
            assert_eq!(id.value, direct.1, "depth {depth}");
        }
    }

    #[test]
    fn per_depth_records_every_iteration() {
        let id = iterative_best_move(
            &TicTacToe,
            &TicTacToe.initial(),
            DeepeningConfig {
                max_depth: 4,
                width: 0,
                aspiration: None,
            },
        )
        .unwrap();
        assert_eq!(id.per_depth.len(), 4);
        for (i, d) in id.per_depth.iter().enumerate() {
            assert_eq!(d.depth as usize, i + 1);
            assert!(d.leaves > 0);
        }
        assert!(id.total_leaves() >= id.per_depth.last().unwrap().leaves);
    }

    #[test]
    fn finds_immediate_win_at_depth_one() {
        let b = Board {
            x: 0b000_000_011,
            o: 0b000_011_000,
        };
        let id = iterative_best_move(
            &TicTacToe,
            &b,
            DeepeningConfig {
                max_depth: 2,
                width: 1,
                aspiration: None,
            },
        )
        .unwrap();
        assert_eq!(id.best_move, 0, "cell 2 completes the row");
        assert!(id.value > 0);
    }

    #[test]
    fn move_ordering_reduces_final_iteration_effort() {
        // The last iteration of an ordered deepening search should cost
        // no more leaves than a cold search at the same depth with the
        // default move order (this is the entire point of deepening).
        let g = Connect4::default();
        let depth = 5u32;
        let id = iterative_best_move(
            &g,
            &g.initial(),
            DeepeningConfig {
                max_depth: depth,
                width: 0,
                aspiration: None,
            },
        )
        .unwrap();
        let last = id.per_depth.last().unwrap().leaves;
        // Cold search at the same depth: sum of per-root-move costs with
        // the default order.
        let cold = {
            let mut total = 0u64;
            let engine = CascadeEngine::with_width(0);
            let mut alpha = Value::MIN;
            for mv in 0..g.num_moves(&g.initial()) {
                let child = g.apply(&g.initial(), mv);
                let src = GameTreeSource::new(g, child, depth - 1);
                let (v, l) = engine
                    .alphabeta_window_counted(&src, alpha, Value::MAX, false)
                    .unwrap();
                alpha = alpha.max(v);
                total += l;
            }
            total
        };
        assert!(
            last <= cold,
            "ordered final iteration ({last}) should not exceed cold search ({cold})"
        );
    }

    #[test]
    fn aspiration_windows_preserve_the_value() {
        let g = Connect4::default();
        for delta in [1i64, 5, 50] {
            let plain = iterative_best_move(
                &g,
                &g.initial(),
                DeepeningConfig {
                    max_depth: 5,
                    width: 0,
                    aspiration: None,
                },
            )
            .unwrap();
            let asp = iterative_best_move(
                &g,
                &g.initial(),
                DeepeningConfig {
                    max_depth: 5,
                    width: 0,
                    aspiration: Some(delta),
                },
            )
            .unwrap();
            assert_eq!(asp.value, plain.value, "delta {delta}");
            assert_eq!(asp.best_move, plain.best_move, "delta {delta}");
        }
    }

    #[test]
    fn tight_aspiration_on_stable_values_saves_leaves() {
        // Tic-Tac-Toe values stabilize early (0 throughout), so a tight
        // window prunes aggressively and never needs a re-search.
        let plain = iterative_best_move(
            &TicTacToe,
            &TicTacToe.initial(),
            DeepeningConfig {
                max_depth: 6,
                width: 0,
                aspiration: None,
            },
        )
        .unwrap();
        let asp = iterative_best_move(
            &TicTacToe,
            &TicTacToe.initial(),
            DeepeningConfig {
                max_depth: 6,
                width: 0,
                aspiration: Some(3),
            },
        )
        .unwrap();
        assert_eq!(asp.value, plain.value);
        assert!(
            asp.total_leaves() <= plain.total_leaves(),
            "aspiration {} vs plain {}",
            asp.total_leaves(),
            plain.total_leaves()
        );
    }

    #[test]
    fn width_does_not_change_the_value() {
        let g = Connect4::default();
        let a = iterative_best_move(
            &g,
            &g.initial(),
            DeepeningConfig {
                max_depth: 4,
                width: 0,
                aspiration: None,
            },
        )
        .unwrap();
        let b = iterative_best_move(
            &g,
            &g.initial(),
            DeepeningConfig {
                max_depth: 4,
                width: 2,
                aspiration: None,
            },
        )
        .unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.best_move, b.best_move);
    }
}
