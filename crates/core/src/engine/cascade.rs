//! Fork-join cascade engine: the top-down view of Parallel SOLVE /
//! Parallel α-β (programs `P-SOLVE` / `P-SOLVE*` in the paper), on
//! `rayon` with cooperative cancellation.
//!
//! At every node, up to `width + 1` consecutive children run
//! concurrently: the leftmost with the full width budget (it may spawn
//! further parallelism below — the paper's "parallel on left subtree"),
//! and the `j`-th look-ahead sibling with budget `width − j` (budget 0 is
//! a pure sequential search — the paper's `S-SOLVE` look-ahead).  When a
//! child's result decides the node (a `1` child of a NOR node, an `α ≥
//! β` cutoff of a MIN/MAX node), the remaining in-flight siblings are
//! aborted through a shared flag — the paper's pre-emption.
//!
//! The paper's algorithm *re-budgets* pruning numbers dynamically as
//! siblings die; this engine assigns budgets statically per batch, which
//! keeps it lock-free and allocation-light.  The exact dynamic semantics
//! (and the paper's step counts) live in `gt-sim` / [`super::round`];
//! this engine trades a small amount of model fidelity for practical
//! fork-join performance.  Root values are always exact.

use gt_tree::{TreeSource, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use super::round::EngineResult;

/// Marker returned when a search was pre-empted — the workspace-wide
/// [`gt_tree::Cancelled`], re-exported here because engine signatures
/// carry it in their `Err` case.
pub use gt_tree::Cancelled;

/// A chain of cancellation flags: a task is cancelled when any flag on
/// its path to the root is set.
#[derive(Clone, Copy)]
struct CancelChain<'a> {
    flag: &'a AtomicBool,
    parent: Option<&'a CancelChain<'a>>,
}

impl<'a> CancelChain<'a> {
    fn root(flag: &'a AtomicBool) -> Self {
        CancelChain { flag, parent: None }
    }

    fn child(&'a self, flag: &'a AtomicBool) -> CancelChain<'a> {
        CancelChain {
            flag,
            parent: Some(self),
        }
    }

    fn is_cancelled(&self) -> bool {
        let mut cur = Some(self);
        while let Some(c) = cur {
            if c.flag.load(Ordering::Relaxed) {
                return true;
            }
            cur = c.parent;
        }
        false
    }
}

/// Fork-join engine with the paper's width parameter.
#[derive(Debug, Clone, Copy)]
pub struct CascadeEngine {
    /// Width `w`: up to `w+1` sibling searches run concurrently per node.
    pub width: u32,
}

impl Default for CascadeEngine {
    fn default() -> Self {
        CascadeEngine { width: 1 }
    }
}

impl CascadeEngine {
    /// Engine with the given width (0 = fully sequential).
    pub fn with_width(width: u32) -> Self {
        CascadeEngine { width }
    }

    /// Evaluate a NOR tree.
    pub fn solve_nor<S: TreeSource>(&self, source: &S) -> EngineResult {
        let start = Instant::now();
        let leaves = AtomicU64::new(0);
        let never = AtomicBool::new(false);
        let cancel = CancelChain::root(&never);
        let v = self
            .nor(source, &mut Vec::new(), self.width, cancel, &leaves)
            .expect("root search cannot be cancelled");
        EngineResult {
            value: Value::from(v),
            rounds: 0, // not a round-synchronous engine
            leaves_evaluated: leaves.load(Ordering::Relaxed),
            max_round_size: self.width + 1,
            elapsed: start.elapsed(),
        }
    }

    /// Evaluate a MIN/MAX tree (root is MAX).
    pub fn solve_minmax<S: TreeSource>(&self, source: &S) -> EngineResult {
        let start = Instant::now();
        let leaves = AtomicU64::new(0);
        let never = AtomicBool::new(false);
        let cancel = CancelChain::root(&never);
        let v = self
            .ab(
                source,
                &mut Vec::new(),
                Value::MIN,
                Value::MAX,
                true,
                self.width,
                cancel,
                &leaves,
            )
            .expect("root search cannot be cancelled");
        EngineResult {
            value: v,
            rounds: 0,
            leaves_evaluated: leaves.load(Ordering::Relaxed),
            max_round_size: self.width + 1,
            elapsed: start.elapsed(),
        }
    }

    /// Like [`CascadeEngine::solve_nor`], but aborts when `cancel`
    /// becomes `true` (set it from another thread — a deadline watcher,
    /// a serving layer shedding load, a user interrupt).  The flag is
    /// checked at every node entry and between sibling batches.
    pub fn solve_nor_cancellable<S: TreeSource>(
        &self,
        source: &S,
        cancel: &AtomicBool,
    ) -> Result<EngineResult, Cancelled> {
        let start = Instant::now();
        let leaves = AtomicU64::new(0);
        let chain = CancelChain::root(cancel);
        match self.nor(source, &mut Vec::new(), self.width, chain, &leaves) {
            Some(v) => Ok(EngineResult {
                value: Value::from(v),
                rounds: 0,
                leaves_evaluated: leaves.load(Ordering::Relaxed),
                max_round_size: self.width + 1,
                elapsed: start.elapsed(),
            }),
            None => Err(Cancelled),
        }
    }

    /// Like [`CascadeEngine::solve_minmax`], but aborts when `cancel`
    /// becomes `true`.
    pub fn solve_minmax_cancellable<S: TreeSource>(
        &self,
        source: &S,
        cancel: &AtomicBool,
    ) -> Result<EngineResult, Cancelled> {
        let start = Instant::now();
        let leaves = AtomicU64::new(0);
        let chain = CancelChain::root(cancel);
        match self.ab(
            source,
            &mut Vec::new(),
            Value::MIN,
            Value::MAX,
            true,
            self.width,
            chain,
            &leaves,
        ) {
            Some(v) => Ok(EngineResult {
                value: v,
                rounds: 0,
                leaves_evaluated: leaves.load(Ordering::Relaxed),
                max_round_size: self.width + 1,
                elapsed: start.elapsed(),
            }),
            None => Err(Cancelled),
        }
    }

    /// Alpha-beta search of the subtree at the source's root with an
    /// explicit window and orientation — the building block move
    /// selection uses (`Err(Cancelled)` can only occur for non-root
    /// calls, so callers passing a fresh window never see it).
    pub fn alphabeta_window<S: TreeSource>(
        &self,
        source: &S,
        alpha: Value,
        beta: Value,
        maximizing: bool,
    ) -> Result<Value, Cancelled> {
        self.alphabeta_window_counted(source, alpha, beta, maximizing)
            .map(|(v, _)| v)
    }

    /// Like [`CascadeEngine::alphabeta_window`] but also reports the
    /// number of leaves evaluated — used by the iterative-deepening
    /// driver to account for search effort.
    pub fn alphabeta_window_counted<S: TreeSource>(
        &self,
        source: &S,
        alpha: Value,
        beta: Value,
        maximizing: bool,
    ) -> Result<(Value, u64), Cancelled> {
        let leaves = AtomicU64::new(0);
        let never = AtomicBool::new(false);
        let cancel = CancelChain::root(&never);
        self.ab(
            source,
            &mut Vec::new(),
            alpha,
            beta,
            maximizing,
            self.width,
            cancel,
            &leaves,
        )
        .map(|v| (v, leaves.load(Ordering::Relaxed)))
        .ok_or(Cancelled)
    }

    /// NOR search.  `None` = pre-empted.
    fn nor<S: TreeSource>(
        &self,
        src: &S,
        path: &mut Vec<u32>,
        width: u32,
        cancel: CancelChain<'_>,
        leaves: &AtomicU64,
    ) -> Option<bool> {
        if cancel.is_cancelled() {
            return None;
        }
        let d = src.arity(path);
        if d == 0 {
            let v = src.leaf_value(path);
            leaves.fetch_add(1, Ordering::Relaxed);
            return Some(v != 0);
        }
        let mut i: u32 = 0;
        while i < d {
            if cancel.is_cancelled() {
                return None;
            }
            let k = (width + 1).min(d - i);
            if k == 1 {
                path.push(i);
                let r = self.nor(src, path, width, cancel, leaves);
                path.pop();
                match r? {
                    true => return Some(false),
                    false => i += 1,
                }
            } else {
                let batch_flag = AtomicBool::new(false);
                let chain = cancel.child(&batch_flag);
                let base: &[u32] = path;
                let results: Vec<Option<bool>> = broadcast_batch(k, |j| {
                    // One exact-size allocation per task instead of a
                    // clone that would regrow on push.
                    let mut p = Vec::with_capacity(base.len() + 1);
                    p.extend_from_slice(base);
                    p.push(i + j);
                    let r = self.nor(src, &mut p, width - j, chain, leaves);
                    if r == Some(true) {
                        // This child decides the node: pre-empt siblings.
                        batch_flag.store(true, Ordering::Relaxed);
                    }
                    r
                });
                if cancel.is_cancelled() {
                    return None;
                }
                if results.contains(&Some(true)) {
                    return Some(false);
                }
                debug_assert!(
                    results.iter().all(|r| *r == Some(false)),
                    "batch member aborted without a deciding sibling"
                );
                i += k;
            }
        }
        Some(true)
    }

    /// Fail-hard alpha-beta.  `None` = pre-empted.
    #[allow(clippy::too_many_arguments)]
    fn ab<S: TreeSource>(
        &self,
        src: &S,
        path: &mut Vec<u32>,
        mut alpha: Value,
        mut beta: Value,
        maximizing: bool,
        width: u32,
        cancel: CancelChain<'_>,
        leaves: &AtomicU64,
    ) -> Option<Value> {
        if cancel.is_cancelled() {
            return None;
        }
        let d = src.arity(path);
        if d == 0 {
            let v = src.leaf_value(path);
            leaves.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        let mut best = if maximizing { Value::MIN } else { Value::MAX };
        let mut i: u32 = 0;
        while i < d {
            if cancel.is_cancelled() {
                return None;
            }
            let k = (width + 1).min(d - i);
            if k == 1 {
                path.push(i);
                let v = self.ab(src, path, alpha, beta, !maximizing, width, cancel, leaves);
                path.pop();
                let v = v?;
                if maximizing {
                    best = best.max(v);
                    alpha = alpha.max(best);
                } else {
                    best = best.min(v);
                    beta = beta.min(best);
                }
                if alpha >= beta {
                    return Some(best);
                }
                i += 1;
            } else {
                let batch_flag = AtomicBool::new(false);
                let chain = cancel.child(&batch_flag);
                let base: &[u32] = path;
                let (snap_a, snap_b) = (alpha, beta);
                let results: Vec<Option<Value>> = broadcast_batch(k, |j| {
                    let mut p = Vec::with_capacity(base.len() + 1);
                    p.extend_from_slice(base);
                    p.push(i + j);
                    let r = self.ab(
                        src,
                        &mut p,
                        snap_a,
                        snap_b,
                        !maximizing,
                        width - j,
                        chain,
                        leaves,
                    );
                    if let Some(v) = r {
                        // A fail-high (fail-low for MIN) decides the node.
                        let cutoff = if maximizing { v >= snap_b } else { v <= snap_a };
                        if cutoff {
                            batch_flag.store(true, Ordering::Relaxed);
                        }
                    }
                    r
                });
                if cancel.is_cancelled() {
                    return None;
                }
                for v in results.into_iter().flatten() {
                    if maximizing {
                        best = best.max(v);
                        alpha = alpha.max(best);
                    } else {
                        best = best.min(v);
                        beta = beta.min(best);
                    }
                }
                if alpha >= beta {
                    return Some(best);
                }
                i += k;
            }
        }
        Some(best)
    }
}

/// Run `k` tasks concurrently and collect their results in index order.
/// Uses `rayon::join` for pairs (the width-1 common case) and a parallel
/// iterator otherwise.
fn broadcast_batch<T: Send>(k: u32, f: impl Fn(u32) -> T + Sync + Send) -> Vec<T> {
    match k {
        0 => Vec::new(),
        1 => vec![f(0)],
        2 => {
            let (a, b) = rayon::join(|| f(0), || f(1));
            vec![a, b]
        }
        _ => {
            use rayon::prelude::*;
            (0..k).into_par_iter().map(f).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{minimax_value, nor_value};
    use gt_tree::ExplicitTree;

    #[test]
    fn nor_value_exact_for_all_widths() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 9, 0.5, seed);
            let truth = nor_value(&s);
            for w in [0u32, 1, 2, 3] {
                let r = CascadeEngine::with_width(w).solve_nor(&s);
                assert_eq!(r.value, truth, "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn minmax_value_exact_for_all_widths() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(3, 5, -100, 100, seed);
            let truth = minimax_value(&s);
            for w in [0u32, 1, 2, 3] {
                let r = CascadeEngine::with_width(w).solve_minmax(&s);
                assert_eq!(r.value, truth, "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn width_zero_evaluates_exactly_the_sequential_leaf_set() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let r = CascadeEngine::with_width(0).solve_nor(&s);
            let seq = gt_tree::minimax::seq_solve(&s, false);
            assert_eq!(r.leaves_evaluated, seq.leaves_evaluated, "seed {seed}");
            let s = UniformSource::minmax_iid(2, 6, 0, 50, seed);
            let r = CascadeEngine::with_width(0).solve_minmax(&s);
            let seq = gt_tree::minimax::seq_alphabeta(&s, false);
            assert_eq!(r.leaves_evaluated, seq.leaves_evaluated, "seed {seed}");
        }
    }

    #[test]
    fn speculation_is_bounded_overhead() {
        // Corollary 1: total work of the width-1 algorithm is within a
        // constant factor of sequential.  The cascade engine speculates,
        // so check a generous factor on random instances.
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 10, 0.5, seed);
            let seq = gt_tree::minimax::seq_solve(&s, false).leaves_evaluated;
            let par = CascadeEngine::with_width(1).solve_nor(&s).leaves_evaluated;
            assert!(
                par <= 6 * seq + 16,
                "speculative blow-up {par} vs {seq} (seed {seed})"
            );
        }
    }

    #[test]
    fn alphabeta_window_orientation() {
        // MIN at the root of the subtree: value is the min of leaves.
        let t = ExplicitTree::internal(vec![ExplicitTree::leaf(5), ExplicitTree::leaf(2)]);
        let e = CascadeEngine::with_width(1);
        let v = e
            .alphabeta_window(&t, Value::MIN, Value::MAX, false)
            .unwrap();
        assert_eq!(v, 2);
        let v = e
            .alphabeta_window(&t, Value::MIN, Value::MAX, true)
            .unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn single_leaf_and_unary_chain() {
        let e = CascadeEngine::default();
        assert_eq!(e.solve_nor(&ExplicitTree::leaf(1)).value, 1);
        let chain =
            ExplicitTree::internal(vec![ExplicitTree::internal(vec![ExplicitTree::leaf(0)])]);
        // NOR(NOR(0)) = NOR(1) = 0.
        assert_eq!(e.solve_nor(&chain).value, 0);
    }

    #[test]
    fn pre_set_cancel_flag_aborts_immediately() {
        let s = UniformSource::nor_worst_case(2, 12);
        let flag = AtomicBool::new(true);
        let r = CascadeEngine::with_width(1).solve_nor_cancellable(&s, &flag);
        assert_eq!(r.unwrap_err(), Cancelled);
        let s = UniformSource::minmax_iid(2, 8, 0, 9, 1);
        let r = CascadeEngine::with_width(1).solve_minmax_cancellable(&s, &flag);
        assert_eq!(r.unwrap_err(), Cancelled);
    }

    #[test]
    fn unset_cancel_flag_matches_plain_solve() {
        let flag = AtomicBool::new(false);
        let s = UniformSource::nor_iid(2, 9, 0.5, 4);
        let plain = CascadeEngine::with_width(1).solve_nor(&s);
        let cancellable = CascadeEngine::with_width(1)
            .solve_nor_cancellable(&s, &flag)
            .unwrap();
        assert_eq!(cancellable.value, plain.value);
        let s = UniformSource::minmax_iid(3, 5, -50, 50, 4);
        let plain = CascadeEngine::with_width(2).solve_minmax(&s);
        let cancellable = CascadeEngine::with_width(2)
            .solve_minmax_cancellable(&s, &flag)
            .unwrap();
        assert_eq!(cancellable.value, plain.value);
    }

    #[test]
    fn mid_flight_cancellation_from_another_thread() {
        // A deliberately huge worst-case tree; cancel shortly after
        // launch and require the engine to come back with Err quickly.
        let s = UniformSource::nor_worst_case(2, 26);
        let flag = AtomicBool::new(false);
        let engine = CascadeEngine::with_width(1);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| engine.solve_nor_cancellable(&s, &flag));
            std::thread::sleep(std::time::Duration::from_millis(20));
            flag.store(true, Ordering::Relaxed);
            assert!(matches!(h.join().unwrap(), Err(Cancelled)));
        });
    }

    #[test]
    fn worst_case_tree_parallel_still_exact() {
        let s = UniformSource::nor_worst_case(2, 10);
        let r = CascadeEngine::with_width(2).solve_nor(&s);
        assert_eq!(r.value, 1);
        // The worst-case ordering forces the *sequential* algorithm to
        // visit every leaf; speculative siblings racing each other can
        // cancel in-flight work, so the parallel engine may do less.
        // The leaf count is nondeterministic but never exceeds the tree.
        assert!(r.leaves_evaluated > 0 && r.leaves_evaluated <= 1 << 10);
    }
}
