//! Young Brothers Wait (YBW): the classical parallel α-β scheme that
//! grew out of this line of work (Feldmann et al.), as an ablation
//! baseline against the paper-faithful engines.
//!
//! YBW's rule: search the *eldest* child of a node first (sequentially
//! with respect to its siblings — it establishes the window), then
//! search all the *younger brothers* in parallel with the narrowed
//! window, aborting them on a cutoff.  Compared to the paper's width-1
//! cascade, YBW spawns unbounded sibling parallelism below the first
//! child instead of a fixed-width look-ahead.

use gt_tree::{TreeSource, Value};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use super::cascade::Cancelled;
use super::round::EngineResult;

/// Young-Brothers-Wait parallel α-β.
#[derive(Debug, Clone, Copy, Default)]
pub struct YbwEngine {
    /// Below this remaining depth the search runs sequentially (tiny
    /// subtrees are not worth forking).  Depth here means path length
    /// from the root; 0 disables the cutoff.
    pub sequential_below: u32,
}

impl YbwEngine {
    /// Engine with a sequential cutoff at the given depth-from-root.
    pub fn with_cutoff(sequential_below: u32) -> Self {
        YbwEngine { sequential_below }
    }

    /// Evaluate a MIN/MAX tree (root MAX).
    pub fn solve_minmax<S: TreeSource>(&self, source: &S) -> EngineResult {
        let never = AtomicBool::new(false);
        self.solve_minmax_cancellable(source, &never)
            .expect("unset flag cannot cancel")
    }

    /// Like [`YbwEngine::solve_minmax`], but aborts when `cancel`
    /// becomes `true` (checked at every node entry; in-flight brothers
    /// observe the same flag).
    pub fn solve_minmax_cancellable<S: TreeSource>(
        &self,
        source: &S,
        cancel: &AtomicBool,
    ) -> Result<EngineResult, Cancelled> {
        let start = Instant::now();
        let leaves = AtomicU64::new(0);
        match self.ab(
            source,
            &mut Vec::new(),
            Value::MIN,
            Value::MAX,
            true,
            cancel,
            &leaves,
        ) {
            Some(v) => Ok(EngineResult {
                value: v,
                rounds: 0,
                leaves_evaluated: leaves.load(Ordering::Relaxed),
                max_round_size: 0,
                elapsed: start.elapsed(),
            }),
            None => Err(Cancelled),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn ab<S: TreeSource>(
        &self,
        src: &S,
        path: &mut Vec<u32>,
        alpha: Value,
        beta: Value,
        maximizing: bool,
        cancel: &AtomicBool,
        leaves: &AtomicU64,
    ) -> Option<Value> {
        if cancel.load(Ordering::Relaxed) {
            return None;
        }
        let d = src.arity(path);
        if d == 0 {
            leaves.fetch_add(1, Ordering::Relaxed);
            return Some(src.leaf_value(path));
        }
        // Eldest brother first, full window.
        path.push(0);
        let first = self.ab(src, path, alpha, beta, !maximizing, cancel, leaves)?;
        path.pop();
        let mut best = first;
        let (mut alpha, mut beta) = (alpha, beta);
        if maximizing {
            alpha = alpha.max(best);
        } else {
            beta = beta.min(best);
        }
        if alpha >= beta || d == 1 {
            return Some(best);
        }
        let deep = self.sequential_below > 0 && path.len() as u32 >= self.sequential_below;
        if deep {
            // Sequential tail for small subtrees.
            for i in 1..d {
                path.push(i);
                let v = self.ab(src, path, alpha, beta, !maximizing, cancel, leaves)?;
                path.pop();
                if maximizing {
                    best = best.max(v);
                    alpha = alpha.max(best);
                } else {
                    best = best.min(v);
                    beta = beta.min(best);
                }
                if alpha >= beta {
                    break;
                }
            }
            return Some(best);
        }
        // Younger brothers in parallel with the narrowed window; a
        // cutoff by any brother aborts the rest.
        let local_cutoff = AtomicBool::new(false);
        let best_atomic = AtomicI64::new(best);
        let base = path.clone();
        let results: Vec<Option<Value>> = {
            use rayon::prelude::*;
            (1..d)
                .into_par_iter()
                .map(|i| {
                    if cancel.load(Ordering::Relaxed) || local_cutoff.load(Ordering::Relaxed) {
                        return None;
                    }
                    let mut p = base.clone();
                    p.push(i);
                    // Brothers share the parent's cancel; the local
                    // cutoff flag is checked at entry (cheap best-effort
                    // abort without chaining a new flag per node).
                    let r = self.ab(src, &mut p, alpha, beta, !maximizing, cancel, leaves);
                    if let Some(v) = r {
                        // Fail-high (fail-low for MIN) triggers a cutoff.
                        let cut = if maximizing { v >= beta } else { v <= alpha };
                        if cut {
                            local_cutoff.store(true, Ordering::Relaxed);
                        }
                        // Fold into the running best.
                        best_atomic
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                                Some(if maximizing { cur.max(v) } else { cur.min(v) })
                            })
                            .ok();
                    }
                    r
                })
                .collect()
        };
        if cancel.load(Ordering::Relaxed) {
            return None;
        }
        let mut best = best_atomic.load(Ordering::Relaxed);
        // Brothers skipped by the best-effort cutoff check never ran;
        // with a cutoff their values cannot change the fail-hard result.
        // Without a cutoff every brother must have completed.
        if !local_cutoff.load(Ordering::Relaxed) {
            debug_assert!(results.iter().all(|r| r.is_some()));
            for v in results.into_iter().flatten() {
                best = if maximizing { best.max(v) } else { best.min(v) };
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::minimax_value;
    use gt_tree::ExplicitTree;

    #[test]
    fn exact_on_random_uniform_trees() {
        for seed in 0..15 {
            let s = UniformSource::minmax_iid(3, 5, -100, 100, seed);
            let truth = minimax_value(&s);
            assert_eq!(YbwEngine::default().solve_minmax(&s).value, truth);
            assert_eq!(
                YbwEngine::with_cutoff(2).solve_minmax(&s).value,
                truth,
                "seed {seed} with cutoff"
            );
        }
    }

    #[test]
    fn exact_with_duplicate_leaf_values() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(2, 7, 0, 3, seed);
            assert_eq!(
                YbwEngine::default().solve_minmax(&s).value,
                minimax_value(&s),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn exact_on_ordered_extremes() {
        let best = UniformSource::minmax_best_ordered(2, 8, 5);
        assert_eq!(YbwEngine::default().solve_minmax(&best).value, 5);
        let worst = UniformSource::minmax_worst_ordered(2, 8);
        assert_eq!(
            YbwEngine::default().solve_minmax(&worst).value,
            minimax_value(&worst)
        );
    }

    #[test]
    fn single_leaf_and_irregular_trees() {
        assert_eq!(
            YbwEngine::default()
                .solve_minmax(&ExplicitTree::leaf(9))
                .value,
            9
        );
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(4),
            ExplicitTree::internal(vec![ExplicitTree::leaf(6), ExplicitTree::leaf(2)]),
            ExplicitTree::leaf(5),
        ]);
        assert_eq!(
            YbwEngine::default().solve_minmax(&t).value,
            minimax_value(&t)
        );
    }

    #[test]
    fn cancellation_aborts_and_unset_flag_is_invisible() {
        let s = UniformSource::minmax_iid(3, 5, -100, 100, 7);
        let flag = AtomicBool::new(true);
        assert!(matches!(
            YbwEngine::default().solve_minmax_cancellable(&s, &flag),
            Err(Cancelled)
        ));
        flag.store(false, Ordering::Relaxed);
        let r = YbwEngine::default()
            .solve_minmax_cancellable(&s, &flag)
            .unwrap();
        assert_eq!(r.value, minimax_value(&s));
    }

    #[test]
    fn eldest_first_keeps_speculation_bounded_on_best_ordered() {
        // With perfect ordering the eldest brother always causes the
        // cutoff, so YBW's total work stays close to sequential.
        let s = UniformSource::minmax_best_ordered(2, 10, 0);
        let seq = gt_tree::minimax::seq_alphabeta(&s, false).leaves_evaluated;
        let ybw = YbwEngine::default().solve_minmax(&s).leaves_evaluated;
        assert!(
            ybw <= 2 * seq,
            "YBW speculation too high on ordered tree: {ybw} vs {seq}"
        );
    }
}
