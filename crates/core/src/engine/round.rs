//! Round-synchronous threaded engine.
//!
//! Drives the exact frontier logic of the `gt-sim` simulators, but
//! evaluates each round's leaves on a rayon thread pool.  Because the
//! frontier is identical to the model simulation's, the number of
//! rounds equals the paper's `P(T)` exactly; wall-clock speed-up then
//! follows the model speed-up whenever per-leaf evaluation cost
//! dominates the (serial) frontier bookkeeping — which is precisely the
//! leaf-evaluation model's accounting.

use gt_sim::alphabeta::Model;
use gt_sim::nor::Policy;
use gt_sim::{AlphaBetaSim, ExpansionSim, NorSim, RunStats};
use gt_tree::{NodeKind, TreeSource, Value};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use super::cascade::Cancelled;

/// Outcome of a threaded engine run.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Root value.
    pub value: Value,
    /// Rounds executed (equals the model's `P(T)` for this width).
    pub rounds: u64,
    /// Leaves evaluated.
    pub leaves_evaluated: u64,
    /// Largest round (processors that could be used at once).
    pub max_round_size: u32,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl EngineResult {
    fn from_stats(stats: &RunStats, elapsed: Duration) -> Self {
        EngineResult {
            value: stats.value,
            rounds: stats.steps,
            leaves_evaluated: stats.total_work,
            max_round_size: stats.processors_used,
            elapsed,
        }
    }
}

/// Round-synchronous parallel engine.
///
/// `sequential_cutoff` avoids paying rayon overhead on tiny rounds: a
/// round smaller than the cutoff is evaluated on the calling thread.
#[derive(Debug, Clone, Copy)]
pub struct RoundEngine {
    /// The paper's width parameter `w` (0 = sequential).
    pub width: u32,
    /// Rounds smaller than this run without forking.
    pub sequential_cutoff: usize,
}

impl Default for RoundEngine {
    fn default() -> Self {
        RoundEngine {
            width: 1,
            sequential_cutoff: 2,
        }
    }
}

impl RoundEngine {
    /// Engine with the given width.
    pub fn with_width(width: u32) -> Self {
        RoundEngine {
            width,
            ..Default::default()
        }
    }

    /// Evaluate a NOR tree (Parallel SOLVE of width `w`, threaded).
    pub fn solve_nor<S: TreeSource>(&self, source: S) -> EngineResult {
        let never = AtomicBool::new(false);
        self.solve_nor_cancellable(source, &never)
            .expect("unset flag cannot cancel")
    }

    /// Like [`RoundEngine::solve_nor`], but aborts between rounds when
    /// `cancel` becomes `true` (the round in flight completes first —
    /// the frontier is the engine's natural preemption boundary).
    pub fn solve_nor_cancellable<S: TreeSource>(
        &self,
        source: S,
        cancel: &AtomicBool,
    ) -> Result<EngineResult, Cancelled> {
        let start = Instant::now();
        let mut sim = NorSim::new(source);
        let mut stats = RunStats::new(false);
        // Frontier paths and values live outside the loop so every round
        // after the first reuses the buffers instead of reallocating.
        let mut frontier: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut values: Vec<(u32, Value)> = Vec::new();
        loop {
            if cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            sim.frontier_paths_into(Policy::Width(self.width), &mut frontier);
            if frontier.is_empty() {
                break;
            }
            self.evaluate_batch_into(sim.tree().source(), &frontier, &mut values);
            sim.apply_step(&values, &mut stats);
        }
        Ok(EngineResult::from_stats(&stats, start.elapsed()))
    }

    /// Evaluate a MIN/MAX tree (Parallel α-β of width `w`, threaded).
    pub fn solve_minmax<S: TreeSource>(&self, source: S) -> EngineResult {
        let never = AtomicBool::new(false);
        self.solve_minmax_cancellable(source, &never)
            .expect("unset flag cannot cancel")
    }

    /// Like [`RoundEngine::solve_minmax`], but aborts between rounds
    /// when `cancel` becomes `true`.
    pub fn solve_minmax_cancellable<S: TreeSource>(
        &self,
        source: S,
        cancel: &AtomicBool,
    ) -> Result<EngineResult, Cancelled> {
        let start = Instant::now();
        let mut sim = AlphaBetaSim::new(source, Model::LeafEvaluation);
        let mut stats = RunStats::new(false);
        let mut frontier: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut values: Vec<(u32, Value)> = Vec::new();
        loop {
            if cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            sim.frontier_paths_into(self.width, &mut frontier);
            if frontier.is_empty() {
                break;
            }
            self.evaluate_batch_into(sim.tree().source(), &frontier, &mut values);
            sim.apply_step(&values, &mut stats);
        }
        Ok(EngineResult::from_stats(&stats, start.elapsed()))
    }

    /// Evaluate a NOR tree in the node-expansion model, expanding each
    /// round's frontier in parallel (for game trees this parallelizes
    /// move generation, the dominant cost of real engines).
    pub fn solve_nor_expansion<S: TreeSource>(&self, source: S) -> EngineResult {
        let start = Instant::now();
        let mut sim = ExpansionSim::new(source);
        let mut stats = RunStats::new(false);
        let mut frontier: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut kinds: Vec<(u32, NodeKind)> = Vec::new();
        loop {
            sim.frontier_paths_into(self.width, &mut frontier);
            if frontier.is_empty() {
                break;
            }
            if frontier.len() < self.sequential_cutoff {
                kinds.clear();
                kinds.extend(
                    frontier
                        .iter()
                        .map(|(id, path)| (*id, sim.tree().source().expand(path))),
                );
            } else {
                let src = sim.tree().source();
                kinds = frontier
                    .par_iter()
                    .map(|(id, path)| (*id, src.expand(path)))
                    .collect();
            }
            sim.apply_expansions(&kinds, &mut stats);
        }
        EngineResult::from_stats(&stats, start.elapsed())
    }

    fn evaluate_batch_into<S: TreeSource>(
        &self,
        source: &S,
        frontier: &[(u32, Vec<u32>)],
        out: &mut Vec<(u32, Value)>,
    ) {
        if frontier.len() < self.sequential_cutoff {
            out.clear();
            out.extend(
                frontier
                    .iter()
                    .map(|(id, path)| (*id, source.leaf_value(path))),
            );
        } else {
            // The parallel collect builds its own vector; hand it to the
            // caller's slot so at least the sequential rounds reuse it.
            *out = frontier
                .par_iter()
                .map(|(id, path)| (*id, source.leaf_value(path)))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{minimax_value, nor_value};

    #[test]
    fn nor_value_matches_ground_truth() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            for w in [0u32, 1, 2] {
                let r = RoundEngine::with_width(w).solve_nor(&s);
                assert_eq!(r.value, nor_value(&s), "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn minmax_value_matches_ground_truth() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(3, 4, 0, 100, seed);
            for w in [0u32, 1, 2] {
                let r = RoundEngine::with_width(w).solve_minmax(&s);
                assert_eq!(r.value, minimax_value(&s), "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn round_counts_match_model_simulation() {
        for seed in 0..6 {
            let s = UniformSource::nor_iid(2, 9, 0.5, seed);
            let model = gt_sim::parallel_solve(&s, 1, false);
            let engine = RoundEngine::with_width(1).solve_nor(&s);
            assert_eq!(engine.rounds, model.steps, "seed {seed}");
            assert_eq!(engine.leaves_evaluated, model.total_work);
            assert_eq!(engine.max_round_size, model.processors_used);
        }
    }

    #[test]
    fn alphabeta_rounds_match_model_simulation() {
        for seed in 0..6 {
            let s = UniformSource::minmax_iid(2, 6, 0, 1000, seed);
            let model = gt_sim::parallel_alphabeta(&s, 1, false);
            let engine = RoundEngine::with_width(1).solve_minmax(&s);
            assert_eq!(engine.rounds, model.steps, "seed {seed}");
            assert_eq!(engine.leaves_evaluated, model.total_work);
        }
    }

    #[test]
    fn expansion_engine_matches_model_simulation() {
        for seed in 0..6 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let model = gt_sim::n_parallel_solve(&s, 1, false);
            let engine = RoundEngine::with_width(1).solve_nor_expansion(&s);
            assert_eq!(engine.value, model.value, "seed {seed}");
            assert_eq!(engine.rounds, model.steps);
            assert_eq!(engine.leaves_evaluated, model.total_work);
        }
    }

    #[test]
    fn expansion_engine_on_a_real_game() {
        use gt_games::{GameTreeSource, TicTacToe};
        // NOR interpretation of a game tree is not meaningful, but the
        // expansion engine must still terminate and agree with the model
        // run on the same source.
        let src = GameTreeSource::from_initial(TicTacToe, 3);
        let engine = RoundEngine::with_width(2).solve_nor_expansion(&src);
        let model = gt_sim::n_parallel_solve(&src, 2, false);
        assert_eq!(engine.value, model.value);
        assert_eq!(engine.rounds, model.steps);
    }

    #[test]
    fn cancellation_aborts_between_rounds() {
        let s = UniformSource::nor_worst_case(2, 12);
        let flag = AtomicBool::new(true);
        assert!(matches!(
            RoundEngine::with_width(1).solve_nor_cancellable(&s, &flag),
            Err(Cancelled)
        ));
        let s = UniformSource::minmax_iid(2, 6, 0, 9, 1);
        assert!(matches!(
            RoundEngine::with_width(1).solve_minmax_cancellable(&s, &flag),
            Err(Cancelled)
        ));
        // An unset flag is invisible.
        flag.store(false, Ordering::Relaxed);
        let r = RoundEngine::with_width(1)
            .solve_minmax_cancellable(&s, &flag)
            .unwrap();
        assert_eq!(r.value, minimax_value(&s));
    }

    #[test]
    fn width_zero_equals_sequential_leaf_count() {
        let s = UniformSource::nor_iid(2, 8, 0.5, 3);
        let r = RoundEngine::with_width(0).solve_nor(&s);
        let re = gt_tree::minimax::seq_solve(&s, false);
        assert_eq!(r.leaves_evaluated, re.leaves_evaluated);
        assert_eq!(r.rounds, re.leaves_evaluated);
    }
}
