//! The paper's analytic machinery, computable: binomial step bounds
//! (Propositions 3 and 6), the Lemma 1/2 constants `k₁`, `k₂`, `x₀`,
//! and the Proposition 4 upper bound on the parallel running time —
//! everything the experiments compare measured quantities against.

use gt_tree::Value;

pub use gt_tree::proof::{fact1_lower_bound, fact2_lower_bound};

/// Binomial coefficient `C(n, k)` in `u128`, saturating on overflow.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) may overflow; saturate.
        acc = match acc.checked_mul((n - i) as u128) {
            Some(x) => x / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    acc
}

/// `σ_k = C(n,k)·(d−1)^k` — Proposition 3's bound on `t_{k+1}(H_T)`,
/// the number of width-1 steps of parallel degree `k+1` in the
/// leaf-evaluation model.
pub fn prop3_bound(d: u32, n: u32, k: u32) -> u128 {
    binomial(n as u64, k as u64).saturating_mul(pow_u128((d - 1) as u128, k))
}

/// Proposition 6's bound on `t*_{k+1}(H_T)` in the node-expansion model.
///
/// The paper bounds `Σ_{m=k}^{n} C(m,k)(d−1)^k` by `(n−k)·C(n,k)(d−1)^k`;
/// we compute the sum exactly via the hockey-stick identity
/// `Σ_{m=k}^{n} C(m,k) = C(n+1, k+1)`, which is tighter.
pub fn prop6_bound(d: u32, n: u32, k: u32) -> u128 {
    binomial(n as u64 + 1, k as u64 + 1).saturating_mul(pow_u128((d - 1) as u128, k))
}

/// `d^⌊n/2⌋` as `u128`.
pub fn half_power(d: u32, n: u32) -> u128 {
    pow_u128(d as u128, n / 2)
}

fn pow_u128(base: u128, exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

/// Lemma 1's `k₁ = max{k : C(n,k)·d^k ≤ d^⌊n/2⌋}`.
///
/// Lemma 1 shows `k₁ ≥ αn` for an absolute constant `α > 0` once
/// `n ≥ b`; this function computes `k₁` exactly by scanning.
pub fn lemma1_k1(d: u32, n: u32) -> u32 {
    let target = half_power(d, n);
    let mut best = 0;
    for k in 0..=n {
        let v = binomial(n as u64, k as u64).saturating_mul(pow_u128(d as u128, k));
        if v <= target {
            best = k;
        }
    }
    best
}

/// The prefix sum `Σ_{i=0}^{k} (i+1)·C(n,i)·(d−1)^i` from Lemma 2 /
/// Proposition 4.
pub fn weighted_prefix_sum(d: u32, n: u32, k: u32) -> u128 {
    let mut acc: u128 = 0;
    for i in 0..=k.min(n) {
        acc = acc.saturating_add((i as u128 + 1).saturating_mul(prop3_bound(d, n, i)));
    }
    acc
}

/// Lemma 2's `k₂ = max{k : Σ_{i=0}^{k} (i+1)C(n,i)(d−1)^i ≤ d^⌊n/2⌋}`.
pub fn lemma2_k2(d: u32, n: u32) -> u32 {
    let target = half_power(d, n);
    let mut best = 0;
    for k in 0..=n {
        if weighted_prefix_sum(d, n, k) <= target {
            best = k;
        } else {
            break; // the sum is increasing in k
        }
    }
    best
}

/// Lemma 2's threshold `x₀(d) = inf{x : (x+1)²(d−1)^x ≤ d^x}`, found by
/// bisection on the decreasing function `log(x+1)/x`.
pub fn x0(d: u32) -> f64 {
    assert!(d >= 2);
    let rhs = 0.5 * ((d as f64) / (d as f64 - 1.0)).ln();
    // Solve log(x+1)/x = rhs.  f decreasing for x > 0.
    let f = |x: f64| (x + 1.0).ln() / x;
    let mut lo = 1e-9;
    let mut hi = 1.0;
    while f(hi) > rhs {
        hi *= 2.0;
        if hi > 1e12 {
            return hi; // pathological d; practically unreachable
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > rhs {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Proposition 4's `k₀ = max{k : Σ_{i=0}^{k} (i+1)C(n,i)(d−1)^i ≤ S(T)}`
/// (equation 12).
pub fn prop4_k0(d: u32, n: u32, s: u128) -> u32 {
    let mut best = 0;
    for k in 0..=n {
        if weighted_prefix_sum(d, n, k) <= s {
            best = k;
        } else {
            break;
        }
    }
    best
}

/// Proposition 4's upper bound on the number of width-1 steps on the
/// skeleton, `P(H_T) ≤ Σ_{i=0}^{k₀} C(n,i)(d−1)^i + ⌈x⌉` with `x` from
/// equation (13).  Combined with Proposition 2 this bounds `P(T)`.
pub fn prop4_step_bound(d: u32, n: u32, s: u128) -> u128 {
    assert!(s >= 1);
    let k0 = prop4_k0(d, n, s);
    let mut sigma_sum: u128 = 0;
    for i in 0..=k0 {
        sigma_sum = sigma_sum.saturating_add(prop3_bound(d, n, i));
    }
    let consumed = weighted_prefix_sum(d, n, k0);
    let leftover = s.saturating_sub(consumed);
    // x satisfies (k0 + 2)·x = leftover.
    let x_ceil = leftover.div_ceil(k0 as u128 + 2);
    sigma_sum.saturating_add(x_ceil)
}

/// The guaranteed speed-up `S(T) / P_bound` implied by Proposition 4 for
/// an instance with sequential work `s` — the *provable* counterpart of
/// the measured speed-ups in experiment E1/E9.
pub fn provable_speedup(d: u32, n: u32, s: u128) -> f64 {
    s as f64 / prop4_step_bound(d, n, s) as f64
}

/// Inherent minimum sequential work on `B(d,n)` (Fact 1), as `u128`.
pub fn fact1_u128(d: u32, n: u32) -> u128 {
    half_power(d, n)
}

/// The paper's processor count for width `w` on a uniform tree of height
/// `n`: `n+1` for width 1, and `O(n^w)` in general (Section 8).  We
/// report the exact combinatorial cap: the number of root-leaf paths
/// with code weight ≤ w, capped coordinate-wise by d−1 live siblings —
/// i.e. `Σ_{k=0}^{w} C(n,k)·min(d−1,1)^k`-ish; for the experiments the
/// useful exact statement is width-1 ⇒ ≤ n+1 processors.
pub fn width1_processor_cap(n: u32) -> u32 {
    n + 1
}

/// Maximum possible parallel degree of a width-`w` step on a uniform
/// tree of height `n` with degree `d`: the number of live leaves with
/// pruning number ≤ w is at most `Σ_{k=0}^{min(w, n)} C(n,k)(d-1)^k`.
pub fn width_processor_cap(d: u32, n: u32, w: u32) -> u128 {
    let mut acc: u128 = 0;
    for k in 0..=w.min(n) {
        acc = acc.saturating_add(prop3_bound(d, n, k));
    }
    acc
}

/// The constant `b` of Lemma 1: any value with `(2be)² < 2^b` works;
/// we return the smallest integer satisfying it.
pub fn lemma1_b() -> u32 {
    let e = std::f64::consts::E;
    (1..1000)
        .find(|&b| {
            let lhs = (2.0 * b as f64 * e).powi(2);
            lhs < 2f64.powi(b as i32)
        })
        .expect("some b satisfies (2be)^2 < 2^b")
}

/// Lemma 1's `α = 1/b`.
pub fn lemma1_alpha() -> f64 {
    1.0 / lemma1_b() as f64
}

/// The `n₀(d) = max(α⁻¹·x₀(d), b)` threshold from Lemma 2's proof —
/// the height beyond which the paper's guarantees formally kick in.
/// (The experiments show the linear-speed-up *shape* appears far
/// earlier; this is the provable threshold.)
pub fn n0_estimate(d: u32) -> f64 {
    let b = lemma1_b() as f64;
    (x0(d) * b).max(b)
}

/// A convenient bundle of all Theorem 1 constants for a given `(d, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem1Constants {
    /// Lemma 1's `k₁`.
    pub k1: u32,
    /// Lemma 2's `k₂`.
    pub k2: u32,
    /// `x₀(d)`.
    pub x0: f64,
    /// Fact 1 lower bound `d^⌊n/2⌋`.
    pub fact1: u128,
    /// The provable speed-up at the Fact 1 work level (worst case over
    /// instances: `S(T) ≥ fact1` always, and the bound improves with S).
    pub provable_speedup_at_fact1: f64,
}

/// Compute the Theorem 1 constants for `B(d,n)`.
pub fn theorem1_constants(d: u32, n: u32) -> Theorem1Constants {
    let fact1 = fact1_u128(d, n);
    Theorem1Constants {
        k1: lemma1_k1(d, n),
        k2: lemma2_k2(d, n),
        x0: x0(d),
        fact1,
        provable_speedup_at_fact1: provable_speedup(d, n, fact1),
    }
}

/// Is `value` consistent with the Theorem 1 guarantee
/// `S(T)/P(T) ≥ c(n+1)`?  Returns the implied constant `c`.
pub fn implied_constant(speedup: f64, n: u32) -> f64 {
    speedup / (n as f64 + 1.0)
}

/// Helper: the minimal leaf count of sequential α-β on `M(d,n)` with
/// best ordering (Knuth–Moore), `d^⌊n/2⌋ + d^⌈n/2⌉ − 1`.
pub fn knuth_moore_minimum(d: u32, n: u32) -> u64 {
    fact2_lower_bound(d, n)
}

/// Clamp a [`Value`]-typed speed-up ratio into f64 (tiny convenience for
/// the harness).
pub fn ratio(num: Value, den: Value) -> f64 {
    num as f64 / den as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn prop3_bound_values() {
        // d=2: (d-1)^k = 1, so the bound is C(n,k).
        assert_eq!(prop3_bound(2, 10, 0), 1);
        assert_eq!(prop3_bound(2, 10, 3), 120);
        // d=3: C(4,2)·2² = 24.
        assert_eq!(prop3_bound(3, 4, 2), 24);
    }

    #[test]
    fn prop6_bound_is_tighter_than_papers_crude_form() {
        for (d, n) in [(2u32, 12u32), (3, 9)] {
            for k in 0..n {
                let exact = prop6_bound(d, n, k);
                let crude = ((n - k + 1) as u128).saturating_mul(prop3_bound(d, n, k));
                assert!(exact <= crude, "d={d} n={n} k={k}");
                // And it dominates the single-level Prop 3 bound.
                assert!(exact >= prop3_bound(d, n, k));
            }
        }
    }

    #[test]
    fn prop6_matches_direct_sum() {
        let d = 3u32;
        let n = 8u32;
        for k in 0..=n {
            let direct: u128 = (k..=n).map(|m| binomial(m as u64, k as u64)).sum::<u128>()
                * pow_u128((d - 1) as u128, k);
            assert_eq!(prop6_bound(d, n, k), direct, "k={k}");
        }
    }

    #[test]
    fn lemma1_k1_monotone_and_positive_for_large_n() {
        // k₁ grows linearly in n (Lemma 1): spot-check positivity and
        // rough monotonicity.
        let mut prev = 0;
        for n in [10u32, 20, 30, 40] {
            let k1 = lemma1_k1(2, n);
            assert!(k1 >= prev, "k1 should not shrink");
            prev = k1;
        }
        assert!(lemma1_k1(2, 40) >= 3);
        // Definition check: C(n,k1)·d^k1 ≤ d^⌊n/2⌋ < the k1+1 term.
        let (d, n) = (2u32, 30u32);
        let k1 = lemma1_k1(d, n);
        let lhs = binomial(n as u64, k1 as u64) * pow_u128(d as u128, k1);
        assert!(lhs <= half_power(d, n));
        let lhs_next = binomial(n as u64, (k1 + 1) as u64) * pow_u128(d as u128, k1 + 1);
        assert!(lhs_next > half_power(d, n));
    }

    #[test]
    fn lemma2_k2_definition_holds() {
        for (d, n) in [(2u32, 24u32), (3, 16), (4, 12)] {
            let k2 = lemma2_k2(d, n);
            assert!(weighted_prefix_sum(d, n, k2) <= half_power(d, n));
            if k2 < n {
                assert!(weighted_prefix_sum(d, n, k2 + 1) > half_power(d, n));
            }
        }
    }

    #[test]
    fn k2_at_most_k1ish() {
        // Lemma 2's proof gives k₂ ≥ k₁ for n ≥ n₀; for small n just
        // check both are sane.
        for n in [16u32, 24, 32] {
            let k1 = lemma1_k1(2, n);
            let k2 = lemma2_k2(2, n);
            assert!(k2 <= n && k1 <= n);
        }
    }

    #[test]
    fn x0_satisfies_its_inequality() {
        for d in [2u32, 3, 4, 8] {
            let x = x0(d);
            assert!(x > 0.0);
            // At x0 the defining inequality holds (with slack at x0·1.01).
            let lhs = |x: f64| 2.0 * (x + 1.0).ln() + x * ((d as f64 - 1.0).ln());
            let rhs = |x: f64| x * (d as f64).ln();
            assert!(lhs(x * 1.01) <= rhs(x * 1.01) + 1e-6, "d={d} x0={x}");
            assert!(lhs(x * 0.5) > rhs(x * 0.5), "d={d} x0={x} not minimal");
        }
    }

    #[test]
    fn x0_increases_with_d() {
        // Larger d shrinks log(d/(d−1)), so the threshold x₀ grows.
        assert!(x0(3) > x0(2));
        assert!(x0(4) > x0(3));
        // d = 2 reference value: ln(x+1)/x = ln(2)/2 ⇒ x ≈ 5.36.
        assert!((x0(2) - 5.36).abs() < 0.1);
    }

    #[test]
    fn prop4_bound_sane() {
        let (d, n) = (2u32, 20u32);
        let s = half_power(d, n); // minimum possible work
        let bound = prop4_step_bound(d, n, s);
        assert!(bound >= 1);
        assert!(bound <= s, "parallel can't exceed sequential steps");
        // More work ⇒ more allowed steps.
        assert!(prop4_step_bound(d, n, 4 * s) >= bound);
    }

    #[test]
    fn provable_speedup_grows_with_n() {
        // Theorem 1: speed-up ≥ c(n+1), so the provable bound must grow
        // roughly linearly in n at the Fact-1 work level.
        let s20 = provable_speedup(2, 20, fact1_u128(2, 20));
        let s40 = provable_speedup(2, 40, fact1_u128(2, 40));
        assert!(s40 > s20, "{s40} vs {s20}");
    }

    #[test]
    fn width_caps() {
        assert_eq!(width1_processor_cap(10), 11);
        // width 1 cap via the general formula: 1 + n(d-1).
        assert_eq!(width_processor_cap(2, 10, 1), 11);
        assert_eq!(width_processor_cap(3, 10, 1), 21);
        // width 2 on binary: 1 + n + C(n,2).
        assert_eq!(width_processor_cap(2, 10, 2), 1 + 10 + 45);
    }

    #[test]
    fn lemma1_b_satisfies_its_inequality() {
        let b = lemma1_b();
        let e = std::f64::consts::E;
        assert!((2.0 * b as f64 * e).powi(2) < 2f64.powi(b as i32));
        // And b-1 must fail (minimality).
        if b > 1 {
            let c = (b - 1) as f64;
            assert!((2.0 * c * e).powi(2) >= 2f64.powi(b as i32 - 1));
        }
        assert!((lemma1_alpha() - 1.0 / b as f64).abs() < 1e-15);
    }

    #[test]
    fn n0_estimates_are_finite_and_grow_with_d() {
        let n2 = n0_estimate(2);
        let n4 = n0_estimate(4);
        assert!(n2.is_finite() && n2 > 0.0);
        // x₀ grows with d, so the provable threshold does too.
        assert!(n4 > n2);
        // The provable threshold is enormous compared to the heights at
        // which the measured speed-up shape already appears (E1) — the
        // gap the Section 8 remark alludes to.
        assert!(n2 > 50.0, "n0 = {n2}");
    }

    #[test]
    fn theorem1_constants_bundle() {
        let c = theorem1_constants(2, 30);
        assert_eq!(c.fact1, 1 << 15);
        assert!(c.k1 >= 1 && c.k2 >= 1);
        assert!(c.provable_speedup_at_fact1 > 0.0);
        assert!((implied_constant(15.5, 30) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn knuth_moore_values() {
        assert_eq!(knuth_moore_minimum(2, 4), 7);
        assert_eq!(knuth_moore_minimum(3, 3), 11);
    }
}
