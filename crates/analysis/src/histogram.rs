//! ASCII histograms: render a distribution (e.g. the per-step parallel
//! degree counts `t_k`) as horizontal bars for terminal output.

use std::fmt::Write as _;

/// Render `(label, count)` rows as a bar chart, scaled to `width`
/// characters for the largest count.
pub fn bars<L: std::fmt::Display>(rows: &[(L, u64)], width: usize) -> String {
    let max = rows.iter().map(|&(_, c)| c).max().unwrap_or(0);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.to_string().len())
        .max()
        .unwrap_or(1);
    let count_w = rows
        .iter()
        .map(|&(_, c)| c.to_string().len())
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for (label, count) in rows {
        let filled = if max == 0 {
            0
        } else {
            ((*count as f64 / max as f64) * width as f64).round() as usize
        };
        let _ = writeln!(
            out,
            "{:>label_w$} | {:<width$} {:>count_w$}",
            label.to_string(),
            "#".repeat(filled),
            count,
        );
    }
    out
}

/// A compact sparkline over a series (8 levels).
pub fn sparkline(series: &[u64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return LEVELS[0].to_string().repeat(series.len());
    }
    series
        .iter()
        .map(|&v| {
            let idx = ((v as f64 / max as f64) * 7.0).round() as usize;
            LEVELS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let s = bars(&[("a", 10), ("b", 5), ("c", 0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
        assert_eq!(lines[2].matches('#').count(), 0);
        assert!(lines[0].trim_end().ends_with("10"));
    }

    #[test]
    fn bars_handle_all_zero() {
        let s = bars(&[(1u32, 0u64), (2, 0)], 8);
        assert_eq!(s.matches('#').count(), 0);
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0, 7, 14]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_all_zero_is_flat() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
    }
}
