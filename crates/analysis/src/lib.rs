//! # gt-analysis — statistics, fitting and tables for the experiments
//!
//! Small, dependency-free numeric helpers used by the experiment harness:
//! summary statistics with confidence intervals, least-squares fits (the
//! empirical speed-up constant `c` of experiment E9 is a through-origin
//! fit of speed-up against `n+1`), and fixed-width ASCII tables.

pub mod fit;
pub mod histogram;
pub mod json;
pub mod stats;
pub mod table;

pub use fit::{fit_affine, fit_log_log, fit_through_origin};
pub use histogram::{bars, sparkline};
pub use json::Json;
pub use stats::{median, percentile, Summary};
pub use table::Table;
