//! Summary statistics: mean, standard deviation, min/max, and a normal
//! 95% confidence half-width.

/// Summary of a sample of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.  Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of a normal-approximation 95% confidence interval for
    /// the mean (`1.96·σ/√n`).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.std_dev / (self.n as f64).sqrt()
    }
}

/// The `q`-th percentile (0.0–1.0) by linear interpolation on the
/// sorted sample.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Geometric mean of positive observations.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample variance = (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95() > 0.0);
        assert!((s.sem() - s.std_dev / 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_single_element() {
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_rejected() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
