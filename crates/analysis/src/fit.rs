//! Least-squares fits used by the experiment harness.

/// Fit `y = c·x` through the origin; returns `c` and the coefficient of
/// determination `R²`.
///
/// This is the estimator for the empirical speed-up constant of
/// experiment E9: Theorem 1 claims speed-up `≥ c(n+1)`, so we regress
/// measured speed-up on `n+1`.
pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty());
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    assert!(sxx > 0.0, "degenerate x values");
    let c = sxy / sxx;
    (
        c,
        r_squared(ys, &xs.iter().map(|x| c * x).collect::<Vec<_>>()),
    )
}

/// Fit `y = a + b·x`; returns `(a, b, R²)`.
pub fn fit_affine(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "degenerate x values");
    let b = sxy / sxx;
    let a = my - b * mx;
    let pred: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
    (a, b, r_squared(ys, &pred))
}

/// Fit a power law `y = a·x^b` by regressing `ln y` on `ln x`; returns
/// `(a, b, R²  in log space)`.
///
/// Used for experiment E2: Team SOLVE's speed-up should scale as `√p`,
/// i.e. exponent `b ≈ 0.5`.
pub fn fit_log_log(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert!(xs.iter().all(|&x| x > 0.0) && ys.iter().all(|&y| y > 0.0));
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let (la, b, r2) = fit_affine(&lx, &ly);
    (la.exp(), b, r2)
}

fn r_squared(ys: &[f64], pred: &[f64]) -> f64 {
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = ys.iter().zip(pred).map(|(y, p)| (y - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn through_origin_exact() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        let (c, r2) = fit_through_origin(&xs, &ys);
        assert!((c - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn through_origin_noisy_stays_close() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.1, 3.9, 6.2, 7.8];
        let (c, r2) = fit_through_origin(&xs, &ys);
        assert!((c - 2.0).abs() < 0.1);
        assert!(r2 > 0.99);
    }

    #[test]
    fn affine_exact() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 5.0];
        let (a, b, r2) = fit_affine(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_log_recovers_square_root() {
        let xs: Vec<f64> = (1..=6).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.sqrt()).collect();
        let (a, b, r2) = fit_log_log(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn log_log_rejects_nonpositive() {
        fit_log_log(&[1.0, -1.0], &[1.0, 1.0]);
    }
}
