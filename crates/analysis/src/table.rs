//! Fixed-width ASCII tables for experiment output.
//!
//! The experiment harness prints one table per reproduced claim; this is
//! a tiny right-aligned formatter, so the tables read like the rows a
//! paper would report.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.header.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with right-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Format a float with 2 decimal places (the standard precision used by
/// the experiment tables).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "speedup"]);
        t.row(["8", "3.14"]);
        t.row(["16", "6.28"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("speedup"));
        assert!(lines[2].ends_with("3.14"));
        assert!(lines[3].starts_with("16"));
        // All lines the same width.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(3.21987), "3.22");
        assert_eq!(f3(2.0), "2.000");
    }

    #[test]
    fn emptiness() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
