//! A minimal JSON writer *and parser* so the experiment harness can
//! emit machine-readable results — and the serving layer can read the
//! same subset back — without a serialization dependency (the shapes
//! are flat: objects of scalars and arrays of rows).
//!
//! The parser accepts standard JSON (including escapes and exponents
//! the writer never produces) and is hardened for untrusted input: it
//! enforces a nesting-depth limit so a hostile request cannot overflow
//! the stack of a server thread.

use std::fmt::Write as _;

/// A JSON value (the subset the harness needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept separate from floats to avoid formatting noise).
    Int(i128),
    /// Float; non-finite values serialize as null per JSON rules.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts.  Untrusted input
/// beyond this depth is rejected instead of recursing further.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parse a complete JSON document (one value, optionally surrounded
    /// by whitespace).  Integers without a fraction or exponent parse as
    /// [`Json::Int`] (falling back to [`Json::Float`] when they exceed
    /// i128); everything else numeric parses as [`Json::Float`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a key in an object (`None` for missing keys and for
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The numeric payload (integer or float) as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => {
                            return Err(format!(
                                "bad escape \\{} at byte {}",
                                c as char,
                                self.pos - 1
                            ))
                        }
                    }
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#04x} in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = &self.text[self.pos..end];
        let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: a low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(format!("invalid low surrogate {lo:#06x}"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c).ok_or_else(|| format!("bad code point {c:#x}"));
            }
            return Err("lone high surrogate".into());
        }
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err("lone low surrogate".into());
        }
        char::from_u32(hi).ok_or_else(|| format!("bad code point {hi:#x}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("expected fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("expected exponent digits at byte {}", self.pos));
            }
        }
        let token = &self.text[start..self.pos];
        if is_float {
            token
                .parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {token:?}: {e}"))
        } else {
            // Digit runs wider than i128 (e.g. the decimal expansion of
            // a large float) degrade to Float instead of failing.
            match token.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => token
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|e| format!("bad number {token:?}: {e}")),
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v.into())
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v.into())
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render() {
        let j = Json::obj([
            ("n", Json::from(14u32)),
            ("speedup", Json::from(6.47)),
            ("tags", Json::Array(vec!["a".into(), "b".into()])),
        ]);
        assert_eq!(j.render(), r#"{"n":14,"speedup":6.47,"tags":["a","b"]}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Array(vec![]).render(), "[]");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("-1.25e-2").unwrap(), Json::Float(-0.0125));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_strings_with_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\te\u0041""#).unwrap(),
            Json::Str("a\"b\\c\nd\teA".into())
        );
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Raw multibyte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let j = Json::parse(r#" { "a" : [1, 2.5, "x"], "b": {"c": null}, "d": true } "#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("a").unwrap().as_array().unwrap()[0].as_int(), Some(1));
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn accessors_discriminate() {
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(-7).as_u64(), None);
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
        assert_eq!(Json::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::Str("x".into()).as_int(), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "truefalse",
            "1 2",
            "[1,]",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "01e",
            "-",
            "1.",
            "1e",
            "{",
            "[",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A depth well under the limit is fine.
        let ok = "[".repeat(64) + "1" + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn oversized_integers_degrade_to_float() {
        let big = "9".repeat(60);
        match Json::parse(&big).unwrap() {
            Json::Float(f) => assert!(f > 9e58 && f < 2e60),
            other => panic!("expected Float, got {other:?}"),
        }
        // Large floats render as bare digit runs; they must round-trip.
        let rendered = Json::Float(-3.2e180).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::Float(-3.2e180));
    }

    #[test]
    fn render_parse_round_trips_handwritten_values() {
        for j in [
            Json::Null,
            Json::Bool(false),
            Json::Int(i128::from(i64::MAX)),
            Json::Float(0.125),
            Json::Str("newline\nquote\" backslash\\ unicode é".into()),
            Json::Array(vec![Json::Int(1), Json::Str("two".into()), Json::Null]),
            Json::obj([
                ("empty", Json::Object(vec![])),
                ("list", Json::Array(vec![Json::Bool(true)])),
            ]),
        ] {
            assert_eq!(Json::parse(&j.render()).unwrap(), j, "{}", j.render());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Semantic equality: the writer renders `Float(2.0)` as `2`, which
    /// reads back as `Int(2)`, so numbers compare by value.
    fn equivalent(a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Int(x), Json::Float(f)) | (Json::Float(f), Json::Int(x)) => *x as f64 == *f,
            (Json::Array(xs), Json::Array(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| equivalent(x, y))
            }
            (Json::Object(xs), Json::Object(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|((ka, va), (kb, vb))| ka == kb && equivalent(va, vb))
            }
            _ => a == b,
        }
    }

    fn arb_json() -> impl Strategy<Value = Json> {
        let leaf = prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            any::<i64>().prop_map(|i| Json::Int(i128::from(i))),
            // Finite floats only: NaN/infinity render as null by design.
            prop::num::f64::NORMAL.prop_map(Json::Float),
            "[a-zA-Z0-9 \\\\\"\n\t\u{e9}]{0,12}".prop_map(Json::Str),
        ];
        leaf.prop_recursive(4, 32, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
                prop::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(Json::Object),
            ]
        })
    }

    proptest! {
        #[test]
        fn render_then_parse_round_trips(j in arb_json()) {
            let text = j.render();
            let back = Json::parse(&text).unwrap();
            prop_assert!(equivalent(&back, &j), "{text} reparsed as {:?}", back);
            // Rendering is a fixed point after one round trip.
            prop_assert_eq!(back.render(), Json::parse(&back.render()).unwrap().render());
        }

        #[test]
        fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
            let _ = Json::parse(&s);
        }
    }
}
