//! A minimal JSON writer so the experiment harness can emit
//! machine-readable results without a serialization dependency (the
//! output shapes are flat: objects of scalars and arrays of rows).

use std::fmt::Write as _;

/// A JSON value (the subset the harness needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept separate from floats to avoid formatting noise).
    Int(i128),
    /// Float; non-finite values serialize as null per JSON rules.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v.into())
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v.into())
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render() {
        let j = Json::obj([
            ("n", Json::from(14u32)),
            ("speedup", Json::from(6.47)),
            ("tags", Json::Array(vec!["a".into(), "b".into()])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"n":14,"speedup":6.47,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Array(vec![]).render(), "[]");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }
}
