//! Generator specs — re-exported from [`gt_tree::spec`].
//!
//! The parser moved into `gt-tree` so that other front ends (notably
//! `gt-serve`) can name workloads without depending on the CLI; this
//! module keeps the historical `gt_cli::spec::GenSpec` path working.

pub use gt_tree::spec::GenSpec;
