//! Command dispatch for `gtree`.

use crate::spec::GenSpec;
use gt_sim::{parallel_alphabeta, parallel_solve, team_solve};
use gt_tree::minimax::{seq_alphabeta, seq_solve};
use gt_tree::scout::scout;
use gt_tree::sss::sss_star;
use gt_tree::{ExplicitTree, TreeSource};
use std::fmt::Write as _;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub exit_code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: format!("{}\n\n{}", message.into(), USAGE),
            exit_code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            exit_code: 1,
        }
    }
}

const USAGE: &str = "\
gtree — game-tree toolkit (Karp & Zhang, SPAA 1989)

USAGE:
  gtree gen    <SPEC> [--max-nodes N]          emit a generated tree (text format)
  gtree eval   (--gen <SPEC> | --tree <FILE>) [--algo A] [--width W] [--processors P]
  gtree run    (--gen <SPEC> | --tree <FILE>) [--algo par-solve|par-alphabeta]
               [--par-workers K]
  gtree render (--gen <SPEC> | --tree <FILE>) [--dot]
  gtree msgsim --gen <SPEC> [--processors P]
  gtree serve  [--addr A] [--eval-workers N] [--queue-depth N] [--batch-max N]
               [--small-cost C] [--cache N] [--shards N] [--cache-ttl MS]
               [--conn-window N] [--deadline-ms MS] [--trace-ring N]
               [--slow-us US] [--metrics-addr A] [--par-threshold C]
               [--par-max-workers K] [--io-threads N]
               [--conn-idle-timeout MS] [--snapshot PATH]
               [--tenant-max-inflight N] [--announce ROUTER]
               [--advertise ADDR] [--weight W] [--generation G]
  gtree route  [--addr A] [--replica ADDR]... [--spawn N] [--spawn-workers N]
               [--pool N] [--conn-window N] [--client-window N] [--retries N]
               [--hedge-ms MS] [--backoff-ms MS] [--probe-interval MS]
               [--probe-timeout MS] [--eject-after N] [--readmit-ms MS]
               [--deadline-ms MS] [--metrics-addr A] [--split-cost C]
               [--split-depth N] [--split-naive] [--split-speculative]
               [--trace-sample F] [--trace-ring N]
  gtree loadgen [--addr A] [--conns N] [--connections N] [--rps R]
               [--duration SECS] [--pipeline N] [--spec SPEC]
               [--algo SERVE-ALGO] [--deadline-ms MS] [--distinct]
               [--split-heavy] [--server-stats] [--sample-traces N]
               [--tenants N] [--json]

SPEC:     kind:key=val,...   kinds: nor crit worst allones minmax
                                    minmax-best minmax-worst minmax-corr
          e.g.  worst:d=2,n=10   minmax:d=3,n=6,lo=0,hi=99,seed=7
ALGO:     solve | team | par-solve | ab | par-ab | scout | sss   (default: picked by family)

`eval` models parallelism (round-synchronous width-w frontiers, the
paper's P(T) accounting); `run` executes it: a work-stealing pool of
--par-workers real threads splits one evaluation PV-split/YBW style
and reports steal/retire/window-narrowing counters next to the
sequential baseline.

`serve` speaks newline-delimited JSON (see docs/SERVING.md); `loadgen`
drives it: open loop at --rps, closed loop when --rps 0, pipelined
closed loop with --pipeline > 1, distinct-key cold storm with
--distinct.  Serve-side algorithms: seq-solve alphabeta parallel-solve
round cascade ybw tt par-alphabeta par-solve.  --eval-workers bounds total engine concurrency
(--workers is a deprecated alias); jobs cheaper than --small-cost
leaves are micro-batched up to --batch-max per dispatch; --cache-ttl
expires cached results; par-* evals costlier than --par-threshold
leaves fan out across up to --par-max-workers idle engine threads.
--io-threads sizes the fixed readiness-driven I/O pool that
multiplexes all connections (no thread per connection);
--conn-idle-timeout closes connections with no complete request for
MS milliseconds.  loadgen --connections N holds N extra mostly-idle
fan-in connections under the active --conns workers (c10k probing).
Observability (docs/OBSERVABILITY.md): the
flight recorder keeps the last --trace-ring request traces plus every
slow (>= --slow-us) or failed one, read back with {\"op\":\"trace\"};
--metrics-addr serves Prometheus text exposition over HTTP.

Fleet membership (docs/ROUTING.md): `serve --announce ROUTER` makes a
replica announce itself to a running router via {\"op\":\"join\"}
(retried until the router is up) and warm-fill its cache from up to
three established peers via {\"op\":\"cachepull\"}; --advertise
overrides the announced address, --weight sets the replica's share of
the keyspace under weighted rendezvous hashing, and --generation
disambiguates restarts of the same address (highest wins).  `serve
--snapshot PATH` restores the result cache from PATH on boot and
writes it back on drain, so a restarted replica rejoins warm.  `serve
--tenant-max-inflight N` caps each tenant (the request's `tenant`
field) at N dispatched-and-unanswered evals — excess is shed with a
429 and retry_after_ms while other tenants keep their capacity;
untagged requests are never capped.  `loadgen --tenants N` tags
requests round-robin with tenants t0..t{N-1} and breaks the report
out per tenant (sent/ok/shed, p50/p99).

`route` fronts a fleet of serve replicas (docs/ROUTING.md): requests
are routed by rendezvous hashing on the canonical cache key so each
replica's cache owns a shard of the keyspace; a health prober ejects
dead replicas (--eject-after probe failures, half-open readmission
after --readmit-ms); busy/unreachable replicas fail over to the next
in hash order up to --retries times; --hedge-ms races slow requests
against a second replica.  --replica is repeatable (or
comma-separated); --spawn N starts N in-process replicas with
--spawn-workers engine workers each.  --split-cost C turns on
scatter-gather splitting: evals whose estimated leaf count clears C
are decomposed along the eldest chain (at most --split-depth levels)
and their subtrees fanned out across the fleet as subevals under
narrowing alpha/beta windows; --split-naive dispatches everything at
once under the root window (benchmark baseline) and
--split-speculative races each level's second child alongside the
eldest.  `loadgen --split-heavy` replaces --spec with a rotating pool
of large trees sized to exercise a router's split planner.

The router assembles one distributed span tree per request
(--trace-sample F traces one in 1/F requests, default 0.05; a
client-supplied trace context is always honored; 0 disables) and
keeps the last --trace-ring finished trees, read back with
{\"op\":\"trace\"}.  `loadgen --sample-traces N` fetches the trees of
the N slowest requests after the run and prints them flame-style.
";

/// Parsed common options.
struct Opts {
    gen: Option<GenSpec>,
    tree_file: Option<String>,
    algo: Option<String>,
    width: u32,
    processors: Option<u32>,
    dot: bool,
    max_nodes: u64,
    par_workers: u32,
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut o = Opts {
        gen: None,
        tree_file: None,
        algo: None,
        width: 1,
        processors: None,
        dot: false,
        max_nodes: 1 << 20,
        par_workers: 4,
    };
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::usage(format!("flag {} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--gen" => {
                let v = next(&mut i)?;
                o.gen = Some(GenSpec::parse(&v).map_err(CliError::usage)?);
            }
            "--tree" => o.tree_file = Some(next(&mut i)?),
            "--algo" => o.algo = Some(next(&mut i)?),
            "--width" => {
                let v = next(&mut i)?;
                o.width = v
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --width {v}: {e}")))?;
            }
            "--processors" => {
                let v = next(&mut i)?;
                o.processors = Some(
                    v.parse()
                        .map_err(|e| CliError::usage(format!("bad --processors {v}: {e}")))?,
                );
            }
            "--max-nodes" => {
                let v = next(&mut i)?;
                o.max_nodes = v
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --max-nodes {v}: {e}")))?;
            }
            "--par-workers" => {
                let v = next(&mut i)?;
                o.par_workers = v
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --par-workers {v}: {e}")))?;
            }
            "--dot" => o.dot = true,
            other if !other.starts_with("--") && o.gen.is_none() && o.tree_file.is_none() => {
                // Positional spec (for `gen`).
                o.gen = Some(GenSpec::parse(other).map_err(CliError::usage)?);
            }
            other => return Err(CliError::usage(format!("unknown argument {other:?}"))),
        }
        i += 1;
    }
    Ok(o)
}

enum Input {
    Spec(GenSpec),
    Tree(ExplicitTree),
}

impl Input {
    fn source(&self) -> Result<Box<dyn TreeSource + Send>, CliError> {
        match self {
            Input::Spec(spec) => spec.build().map_err(CliError::usage),
            Input::Tree(t) => Ok(Box::new(t.clone())),
        }
    }

    fn is_minmax(&self) -> bool {
        match self {
            Input::Spec(spec) => spec.is_minmax(),
            // Heuristic for files: MIN/MAX iff any leaf is outside {0,1}.
            Input::Tree(t) => {
                fn boolean(t: &ExplicitTree) -> bool {
                    match t {
                        ExplicitTree::Leaf(v) => *v == 0 || *v == 1,
                        ExplicitTree::Internal(c) => c.iter().all(boolean),
                    }
                }
                !boolean(t)
            }
        }
    }
}

fn load_input(o: &Opts) -> Result<Input, CliError> {
    match (&o.gen, &o.tree_file) {
        (Some(spec), None) => Ok(Input::Spec(spec.clone())),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
            let tree = gt_tree::text::from_text(&text)
                .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
            Ok(Input::Tree(tree))
        }
        (Some(_), Some(_)) => Err(CliError::usage("--gen and --tree are mutually exclusive")),
        (None, None) => Err(CliError::usage("need --gen SPEC or --tree FILE")),
    }
}

/// Execute a `gtree` invocation (everything after the program name) and
/// return the text to print.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage("missing command"));
    };
    let rest = &args[1..];
    match command.as_str() {
        "gen" => {
            let o = parse_opts(rest)?;
            let input = load_input(&o)?;
            let Input::Spec(spec) = &input else {
                return Err(CliError::usage("gen needs a SPEC, not --tree"));
            };
            let src = spec.build().map_err(CliError::usage)?;
            // Guard materialization.
            let stats = gt_tree::stats::shape_stats(&src, o.max_nodes);
            if stats.truncated {
                return Err(CliError::runtime(format!(
                    "tree exceeds --max-nodes {} — refusing to materialize",
                    o.max_nodes
                )));
            }
            let tree = ExplicitTree::from_source(&&src, 10_000);
            Ok(gt_tree::text::to_text(&tree))
        }
        "eval" => {
            let o = parse_opts(rest)?;
            let input = load_input(&o)?;
            let src = input.source()?;
            let algo = o.algo.clone().unwrap_or_else(|| {
                if input.is_minmax() {
                    "par-ab".to_string()
                } else {
                    "par-solve".to_string()
                }
            });
            let mut out = String::new();
            match algo.as_str() {
                "solve" => {
                    let st = seq_solve(&src, false);
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(out, "leaves   : {}", st.leaves_evaluated);
                    let _ = writeln!(out, "expanded : {}", st.nodes_expanded);
                }
                "team" => {
                    let p = o.processors.unwrap_or(4).max(1);
                    let st = team_solve(&src, p, false);
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(out, "steps    : {} (p = {p})", st.steps);
                    let _ = writeln!(out, "work     : {}", st.total_work);
                }
                "par-solve" => {
                    let st = parallel_solve(&src, o.width, false);
                    let seq = seq_solve(&src, false).leaves_evaluated;
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(out, "S(T)     : {seq}");
                    let _ = writeln!(out, "P(T)     : {} (width {})", st.steps, o.width);
                    let _ = writeln!(out, "speedup  : {:.2}", seq as f64 / st.steps as f64);
                    let _ = writeln!(out, "procs    : {}", st.processors_used);
                }
                "ab" => {
                    let st = seq_alphabeta(&src, false);
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(out, "leaves   : {}", st.leaves_evaluated);
                }
                "par-ab" => {
                    let st = parallel_alphabeta(&src, o.width, false);
                    let seq = seq_alphabeta(&src, false).leaves_evaluated;
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(out, "S~(T)    : {seq}");
                    let _ = writeln!(out, "P~(T)    : {} (width {})", st.steps, o.width);
                    let _ = writeln!(out, "speedup  : {:.2}", seq as f64 / st.steps as f64);
                    let _ = writeln!(out, "procs    : {}", st.processors_used);
                }
                "scout" => {
                    let st = scout(&src);
                    let _ = writeln!(out, "value      : {}", st.value);
                    let _ = writeln!(out, "leaves     : {}", st.leaves_evaluated);
                    let _ = writeln!(out, "re-searches: {}", st.researches);
                }
                "sss" => {
                    let st = sss_star(&src);
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(out, "leaves   : {}", st.leaves_evaluated);
                    let _ = writeln!(out, "peak OPEN: {}", st.peak_open);
                }
                other => return Err(CliError::usage(format!("unknown --algo {other:?}"))),
            }
            Ok(out)
        }
        "run" => {
            let o = parse_opts(rest)?;
            let input = load_input(&o)?;
            let src = input.source()?;
            let algo = o.algo.clone().unwrap_or_else(|| {
                if input.is_minmax() {
                    "par-alphabeta".to_string()
                } else {
                    "par-solve".to_string()
                }
            });
            let workers = o.par_workers.max(1);
            let cancel = std::sync::atomic::AtomicBool::new(false);
            let mut out = String::new();
            match algo.as_str() {
                "par-solve" => {
                    if input.is_minmax() {
                        return Err(CliError::usage("par-solve needs a NOR (AND/OR) tree"));
                    }
                    let st = gt_tree::par_solve(&src, workers, &cancel)
                        .map_err(|_| CliError::runtime("cancelled"))?;
                    let seq = seq_solve(&src, false);
                    assert_eq!(st.value, seq.value, "parallel/sequential value mismatch");
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(
                        out,
                        "leaves   : {} (seq {})",
                        st.leaves_evaluated, seq.leaves_evaluated
                    );
                    let _ = writeln!(out, "workers  : {}", st.workers);
                    let _ = writeln!(out, "steals   : {}", st.steals);
                    let _ = writeln!(out, "retired  : {}", st.retired);
                    let _ = writeln!(out, "narrowed : {}", st.window_narrowings);
                }
                "par-alphabeta" | "par-ab" => {
                    let st = gt_tree::par_alphabeta(&src, workers, &cancel)
                        .map_err(|_| CliError::runtime("cancelled"))?;
                    let seq = seq_alphabeta(&src, false);
                    assert_eq!(st.value, seq.value, "parallel/sequential value mismatch");
                    let _ = writeln!(out, "value    : {}", st.value);
                    let _ = writeln!(
                        out,
                        "leaves   : {} (seq {})",
                        st.leaves_evaluated, seq.leaves_evaluated
                    );
                    let _ = writeln!(out, "workers  : {}", st.workers);
                    let _ = writeln!(out, "steals   : {}", st.steals);
                    let _ = writeln!(out, "retired  : {}", st.retired);
                    let _ = writeln!(out, "narrowed : {}", st.window_narrowings);
                    let _ = writeln!(out, "cutoffs  : {}", st.cutoffs);
                }
                other => {
                    return Err(CliError::usage(format!(
                        "run supports par-solve | par-alphabeta, not {other:?}"
                    )))
                }
            }
            Ok(out)
        }
        "render" => {
            let o = parse_opts(rest)?;
            let input = load_input(&o)?;
            let src = input.source()?;
            let stats = gt_tree::stats::shape_stats(&src, o.max_nodes);
            if stats.truncated {
                return Err(CliError::runtime(format!(
                    "tree exceeds --max-nodes {} — refusing to render",
                    o.max_nodes
                )));
            }
            let tree = ExplicitTree::from_source(&&src, 10_000);
            Ok(if o.dot {
                gt_tree::render::dot(&tree, "gtree")
            } else {
                gt_tree::render::ascii(&tree)
            })
        }
        "msgsim" => {
            let o = parse_opts(rest)?;
            let input = load_input(&o)?;
            let src = input.source()?;
            let r = match o.processors {
                Some(p) => gt_msgsim::simulate_with_processors(&src, p.max(1)),
                None => gt_msgsim::simulate(&src),
            };
            let seq = seq_solve(&src, false).nodes_expanded;
            let mut out = String::new();
            let _ = writeln!(out, "value     : {}", r.value);
            let _ = writeln!(out, "ticks     : {}", r.ticks);
            let _ = writeln!(out, "S*(T)     : {seq}");
            let _ = writeln!(out, "speedup   : {:.2}", seq as f64 / r.ticks as f64);
            let _ = writeln!(out, "processors: {}", r.processors);
            let _ = writeln!(out, "messages  : {}", r.total_messages());
            Ok(out)
        }
        "serve" => run_serve(rest),
        "route" => run_route(rest),
        "loadgen" => run_loadgen_cmd(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

/// SIGINT → a self-pipe the serve loop sleeps on.  Raw FFI keeps the
/// CLI dependency-free; the handler only stores an atomic and writes
/// one byte to the pipe, both async-signal-safe.  Poll-waiting on the
/// pipe's read end wakes the drain instantly on Ctrl-C instead of at
/// the next tick of a sleep loop, and composes with the server's
/// pipelined accept loop (which keeps draining on its own flag).
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

    pub static FLAG: AtomicBool = AtomicBool::new(false);
    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }
    const POLLIN: i16 = 1;

    extern "C" fn handle(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
        let fd = WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = [1u8];
            unsafe {
                write(fd, byte.as_ptr(), 1);
            }
        }
    }

    /// Install the handler; returns the self-pipe's read end, or
    /// `None` when the pipe could not be created (then `wait` falls
    /// back to sleeping).
    pub fn install() -> Option<i32> {
        let mut fds = [-1i32; 2];
        let read_fd = if unsafe { pipe(fds.as_mut_ptr()) } == 0 {
            WRITE_FD.store(fds[1], Ordering::SeqCst);
            Some(fds[0])
        } else {
            None
        };
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, handle);
        }
        read_fd
    }

    /// Sleep up to `timeout_ms`, waking early the instant SIGINT
    /// lands on the self-pipe; reports whether it has fired.
    pub fn wait(read_fd: Option<i32>, timeout_ms: i32) -> bool {
        match read_fd {
            Some(fd) => {
                let mut p = PollFd {
                    fd,
                    events: POLLIN,
                    revents: 0,
                };
                let n = unsafe { poll(&mut p, 1, timeout_ms) };
                if n > 0 && p.revents & POLLIN != 0 {
                    // Drain the pipe so repeated signals don't spin.
                    let mut buf = [0u8; 16];
                    unsafe {
                        read(fd, buf.as_mut_ptr(), buf.len());
                    }
                }
                fired()
            }
            None => {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
                fired()
            }
        }
    }

    pub fn fired() -> bool {
        FLAG.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() -> Option<i32> {
        None
    }

    pub fn wait(_read_fd: Option<i32>, timeout_ms: i32) -> bool {
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
        false
    }

    pub fn fired() -> bool {
        false
    }
}

fn parse_flag<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| CliError::usage(format!("bad {name} {value}: {e}")))
}

fn run_serve(args: &[String]) -> Result<String, CliError> {
    let mut config = gt_serve::Config {
        addr: "127.0.0.1:7171".into(),
        workers: 4,
        ..gt_serve::Config::default()
    };
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::usage(format!("flag {} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--addr" => config.addr = next(&mut i)?,
            "--eval-workers" => {
                config.workers = parse_flag("--eval-workers", &next(&mut i)?)?;
            }
            // Deprecated alias from before the shared executor.
            "--workers" => config.workers = parse_flag("--workers", &next(&mut i)?)?,
            "--queue-depth" => config.queue_depth = parse_flag("--queue-depth", &next(&mut i)?)?,
            "--batch-max" => config.batch_max = parse_flag("--batch-max", &next(&mut i)?)?,
            "--small-cost" => {
                config.small_cost_max = parse_flag("--small-cost", &next(&mut i)?)?;
            }
            "--cache" => config.cache_capacity = parse_flag("--cache", &next(&mut i)?)?,
            "--shards" => config.cache_shards = parse_flag("--shards", &next(&mut i)?)?,
            "--cache-ttl" => {
                config.cache_ttl_ms = Some(parse_flag("--cache-ttl", &next(&mut i)?)?);
            }
            "--conn-window" => config.conn_window = parse_flag("--conn-window", &next(&mut i)?)?,
            "--deadline-ms" => {
                config.default_deadline_ms = parse_flag("--deadline-ms", &next(&mut i)?)?;
            }
            "--trace-ring" => config.trace_ring = parse_flag("--trace-ring", &next(&mut i)?)?,
            "--slow-us" => config.slow_us = parse_flag("--slow-us", &next(&mut i)?)?,
            "--metrics-addr" => config.metrics_addr = Some(next(&mut i)?),
            "--par-threshold" => {
                config.par_threshold = parse_flag("--par-threshold", &next(&mut i)?)?;
            }
            "--par-max-workers" => {
                config.par_max_workers = parse_flag("--par-max-workers", &next(&mut i)?)?;
            }
            "--io-threads" => config.io_threads = parse_flag("--io-threads", &next(&mut i)?)?,
            "--conn-idle-timeout" => {
                config.conn_idle_timeout_ms =
                    Some(parse_flag("--conn-idle-timeout", &next(&mut i)?)?);
            }
            "--snapshot" => config.snapshot_path = Some(next(&mut i)?),
            "--tenant-max-inflight" => {
                config.tenant_max_inflight = parse_flag("--tenant-max-inflight", &next(&mut i)?)?;
            }
            "--announce" => config.announce = Some(next(&mut i)?),
            "--advertise" => config.advertise = Some(next(&mut i)?),
            "--weight" => {
                config.weight = parse_flag("--weight", &next(&mut i)?)?;
                if config.weight == 0 {
                    return Err(CliError::usage(
                        "--weight must be at least 1 (a zero-weight replica owns no keys)",
                    ));
                }
            }
            "--generation" => config.generation = parse_flag("--generation", &next(&mut i)?)?,
            other => return Err(CliError::usage(format!("unknown argument {other:?}"))),
        }
        i += 1;
    }
    let server = gt_serve::Server::start(config)
        .map_err(|e| CliError::runtime(format!("cannot start server: {e}")))?;
    let pipe_fd = sigint::install();
    eprintln!(
        "gt-serve listening on {} — Ctrl-C or a {{\"op\":\"shutdown\"}} request drains and exits",
        server.local_addr()
    );
    let flag = server.shutdown_flag();
    while !flag.load(std::sync::atomic::Ordering::SeqCst) {
        if sigint::wait(pipe_fd, 100) {
            server.request_shutdown();
            break;
        }
    }
    let snapshot = server.join();
    let mut out = String::new();
    let _ = writeln!(out, "{}", snapshot.to_json().render());
    out.push_str(&snapshot.render_ascii());
    Ok(out)
}

fn run_route(args: &[String]) -> Result<String, CliError> {
    let mut config = gt_router::RouterConfig {
        addr: "127.0.0.1:7170".into(),
        ..gt_router::RouterConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::usage(format!("flag {} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--addr" => config.addr = next(&mut i)?,
            "--replica" | "--replicas" => {
                for addr in next(&mut i)?.split(',') {
                    let addr = addr.trim();
                    if !addr.is_empty() {
                        config.replicas.push(addr.to_string());
                    }
                }
            }
            "--spawn" => config.spawn = parse_flag("--spawn", &next(&mut i)?)?,
            "--spawn-workers" => {
                config.spawn_config.workers = parse_flag("--spawn-workers", &next(&mut i)?)?;
            }
            "--pool" => config.pool = parse_flag("--pool", &next(&mut i)?)?,
            "--conn-window" => config.conn_window = parse_flag("--conn-window", &next(&mut i)?)?,
            "--client-window" => {
                config.client_window = parse_flag("--client-window", &next(&mut i)?)?;
            }
            "--retries" => config.retries = parse_flag("--retries", &next(&mut i)?)?,
            "--hedge-ms" => config.hedge_ms = Some(parse_flag("--hedge-ms", &next(&mut i)?)?),
            "--backoff-ms" => config.backoff_ms = parse_flag("--backoff-ms", &next(&mut i)?)?,
            "--probe-interval" => {
                config.probe_interval_ms = parse_flag("--probe-interval", &next(&mut i)?)?;
            }
            "--probe-timeout" => {
                config.probe_timeout_ms = parse_flag("--probe-timeout", &next(&mut i)?)?;
            }
            "--eject-after" => {
                config.health.eject_after = parse_flag("--eject-after", &next(&mut i)?)?;
            }
            "--readmit-ms" => {
                let ms: u64 = parse_flag("--readmit-ms", &next(&mut i)?)?;
                config.health.readmit_after = std::time::Duration::from_millis(ms);
            }
            "--deadline-ms" => {
                config.default_deadline_ms = parse_flag("--deadline-ms", &next(&mut i)?)?;
            }
            "--metrics-addr" => config.metrics_addr = Some(next(&mut i)?),
            "--split-cost" => {
                config.split.cost_threshold = Some(parse_flag("--split-cost", &next(&mut i)?)?);
            }
            "--split-depth" => {
                config.split.max_depth = parse_flag("--split-depth", &next(&mut i)?)?;
            }
            "--split-naive" => config.split.naive = true,
            "--split-speculative" => config.split.speculative = true,
            "--trace-sample" => {
                config.trace_sample = parse_flag("--trace-sample", &next(&mut i)?)?;
            }
            "--trace-ring" => config.trace_ring = parse_flag("--trace-ring", &next(&mut i)?)?,
            other => return Err(CliError::usage(format!("unknown argument {other:?}"))),
        }
        i += 1;
    }
    if config.replicas.is_empty() && config.spawn == 0 {
        return Err(CliError::usage(
            "route needs at least one --replica ADDR (repeatable) or --spawn N",
        ));
    }
    let router = gt_router::Router::start(config)
        .map_err(|e| CliError::runtime(format!("cannot start router: {e}")))?;
    let pipe_fd = sigint::install();
    eprintln!(
        "gt-router listening on {} -> fleet [{}] — Ctrl-C or a {{\"op\":\"shutdown\"}} request drains and exits",
        router.local_addr(),
        router.replica_addrs().join(", ")
    );
    while !router.draining() {
        if sigint::wait(pipe_fd, 100) {
            router.request_shutdown();
            break;
        }
    }
    let snapshot = router.join();
    Ok(format!("{}\n", snapshot.to_json().render()))
}

fn run_loadgen_cmd(args: &[String]) -> Result<String, CliError> {
    let mut config = gt_serve::LoadgenConfig {
        conns: 4,
        ..gt_serve::LoadgenConfig::default()
    };
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::usage(format!("flag {} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--addr" => config.addr = next(&mut i)?,
            "--conns" => config.conns = parse_flag("--conns", &next(&mut i)?)?,
            "--connections" => {
                config.connections = parse_flag("--connections", &next(&mut i)?)?;
            }
            "--rps" => config.rps = parse_flag("--rps", &next(&mut i)?)?,
            "--duration" => {
                let secs: f64 = parse_flag("--duration", &next(&mut i)?)?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(CliError::usage("--duration must be positive"));
                }
                config.duration = std::time::Duration::from_secs_f64(secs);
            }
            "--spec" => config.spec = next(&mut i)?,
            "--algo" => config.algo = next(&mut i)?,
            "--deadline-ms" => {
                config.deadline_ms = Some(parse_flag("--deadline-ms", &next(&mut i)?)?);
            }
            "--pipeline" => config.pipeline = parse_flag("--pipeline", &next(&mut i)?)?,
            "--distinct" => config.distinct = true,
            "--split-heavy" => config.split_heavy = true,
            "--server-stats" => config.include_server_stats = true,
            "--sample-traces" => {
                config.sample_traces = parse_flag("--sample-traces", &next(&mut i)?)?;
            }
            "--tenants" => config.tenants = parse_flag("--tenants", &next(&mut i)?)?,
            "--json" => json = true,
            other => return Err(CliError::usage(format!("unknown argument {other:?}"))),
        }
        i += 1;
    }
    if config.pipeline > 1 && config.rps > 0.0 {
        return Err(CliError::usage(
            "--pipeline applies to closed loop only; drop it or set --rps 0",
        ));
    }
    let report = gt_serve::run_loadgen(&config);
    let replies = report.ok
        + report.shed
        + report.timeout
        + report.bad
        + report.draining
        + report.other_error;
    if replies == 0 && report.transport_errors > 0 {
        return Err(CliError::runtime(format!(
            "no server reachable at {}",
            config.addr
        )));
    }
    Ok(if json {
        format!("{}\n", report.to_json().render())
    } else {
        report.render()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn gen_emits_parseable_trees() {
        let out = run_str(&["gen", "worst:d=2,n=4"]).unwrap();
        let t = gt_tree::text::from_text(out.trim()).unwrap();
        assert!(t.is_uniform(2, 4));
    }

    #[test]
    fn gen_refuses_oversized_trees() {
        let err = run_str(&["gen", "worst:d=2,n=24"]).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("max-nodes"));
    }

    #[test]
    fn eval_par_solve_reports_speedup() {
        let out = run_str(&["eval", "--gen", "worst:d=2,n=8", "--algo", "par-solve"]).unwrap();
        assert!(out.contains("value    : 1"));
        assert!(out.contains("S(T)     : 256"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn eval_defaults_by_family() {
        let out = run_str(&["eval", "--gen", "minmax:d=2,n=4,seed=3"]).unwrap();
        assert!(out.contains("S~(T)"), "default algo for minmax is par-ab");
        let out = run_str(&["eval", "--gen", "crit:n=6"]).unwrap();
        assert!(out.contains("P(T)"), "default algo for NOR is par-solve");
    }

    #[test]
    fn eval_all_algorithms_agree_on_value() {
        let mut values = Vec::new();
        for algo in ["ab", "par-ab", "scout", "sss"] {
            let out =
                run_str(&["eval", "--gen", "minmax:d=2,n=5,seed=11", "--algo", algo]).unwrap();
            let line = out.lines().find(|l| l.contains("value")).unwrap();
            values.push(line.split(':').nth(1).unwrap().trim().to_string());
        }
        assert!(values.windows(2).all(|w| w[0] == w[1]), "{values:?}");
    }

    #[test]
    fn run_command_executes_the_work_stealing_pool() {
        let out = run_str(&[
            "run",
            "--gen",
            "minmax:d=4,n=3,lo=-9,hi=9,seed=5",
            "--par-workers",
            "4",
        ])
        .unwrap();
        assert!(out.contains("value"), "{out}");
        assert!(out.contains("workers  : 4"), "{out}");
        assert!(out.contains("steals"), "{out}");
        // NOR family defaults to par-solve.
        let nor = run_str(&["run", "--gen", "crit:n=6"]).unwrap();
        assert!(nor.contains("value"), "{nor}");
        // par-solve refuses MIN/MAX trees; flags must parse.
        assert_eq!(
            run_str(&[
                "run",
                "--gen",
                "minmax:d=2,n=2,seed=1",
                "--algo",
                "par-solve"
            ])
            .unwrap_err()
            .exit_code,
            2
        );
        assert_eq!(
            run_str(&["run", "--gen", "crit:n=4", "--par-workers", "zap"])
                .unwrap_err()
                .exit_code,
            2
        );
    }

    #[test]
    fn render_ascii_and_dot() {
        let out = run_str(&["render", "--gen", "minmax:d=2,n=2,seed=1"]).unwrap();
        assert!(out.contains("MAX"));
        let out = run_str(&["render", "--gen", "minmax:d=2,n=2,seed=1", "--dot"]).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn msgsim_runs() {
        let out = run_str(&["msgsim", "--gen", "worst:d=2,n=8", "--processors", "3"]).unwrap();
        assert!(out.contains("value     : 1"));
        assert!(out.contains("processors: 3"));
    }

    #[test]
    fn tree_file_roundtrip() {
        let dir = std::env::temp_dir().join("gtree-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.gt");
        std::fs::write(&path, "((3 9) (7 1))").unwrap();
        let out = run_str(&["eval", "--tree", path.to_str().unwrap(), "--algo", "ab"]).unwrap();
        assert!(out.contains("value    : 3"));
    }

    #[test]
    fn route_flags_are_validated() {
        assert_eq!(run_str(&["route", "--bogus"]).unwrap_err().exit_code, 2);
        let err = run_str(&["route"]).unwrap_err();
        assert_eq!(
            err.exit_code, 2,
            "no replicas and no --spawn is a usage error"
        );
        assert!(err.message.contains("--replica"));
        for flag in [
            "--spawn",
            "--pool",
            "--retries",
            "--hedge-ms",
            "--backoff-ms",
            "--probe-interval",
            "--eject-after",
            "--readmit-ms",
            "--split-cost",
            "--split-depth",
        ] {
            assert_eq!(
                run_str(&["route", flag, "many"]).unwrap_err().exit_code,
                2,
                "{flag} must parse as a number"
            );
        }
        assert_eq!(
            run_str(&["route", "--replica"]).unwrap_err().exit_code,
            2,
            "missing value"
        );
    }

    #[test]
    fn errors_carry_usage_and_codes() {
        assert_eq!(run_str(&[]).unwrap_err().exit_code, 2);
        assert_eq!(run_str(&["frobnicate"]).unwrap_err().exit_code, 2);
        assert_eq!(
            run_str(&["eval", "--gen", "nope:n=3"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert!(run_str(&["help"]).unwrap().contains("USAGE"));
        let err = run_str(&["eval"]).unwrap_err();
        assert!(err.message.contains("--gen"));
    }

    #[test]
    fn serve_and_loadgen_flags_are_validated() {
        assert_eq!(run_str(&["serve", "--bogus"]).unwrap_err().exit_code, 2);
        assert_eq!(
            run_str(&["serve", "--workers"]).unwrap_err().exit_code,
            2,
            "missing value"
        );
        assert_eq!(
            run_str(&["loadgen", "--duration", "0"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_str(&["loadgen", "--rps", "fast"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_str(&["serve", "--max-leaves", "10"])
                .unwrap_err()
                .exit_code,
            2,
            "the leaf ceiling is gone: every algorithm is cancellable"
        );
        assert_eq!(
            run_str(&["serve", "--io-threads", "none"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_str(&["serve", "--conn-idle-timeout"])
                .unwrap_err()
                .exit_code,
            2,
            "missing value"
        );
        assert_eq!(
            run_str(&["loadgen", "--connections", "-3"])
                .unwrap_err()
                .exit_code,
            2
        );
        let err = run_str(&["loadgen", "--pipeline", "8", "--rps", "10"]).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("closed loop"));
        for flag in [
            "--eval-workers",
            "--batch-max",
            "--small-cost",
            "--cache-ttl",
            "--trace-ring",
            "--slow-us",
            "--par-threshold",
            "--par-max-workers",
        ] {
            assert_eq!(
                run_str(&["serve", flag, "many"]).unwrap_err().exit_code,
                2,
                "{flag} must parse as a number"
            );
        }
        assert_eq!(
            run_str(&["serve", "--metrics-addr"]).unwrap_err().exit_code,
            2,
            "--metrics-addr needs a value"
        );
        assert_eq!(
            run_str(&["loadgen", "--sample-traces", "lots"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_str(&["route", "--trace-sample", "often"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert!(run_str(&["help"]).unwrap().contains("--trace-ring"));
        assert!(run_str(&["help"]).unwrap().contains("--sample-traces"));
        assert!(run_str(&["help"]).unwrap().contains("--trace-sample"));
    }

    #[test]
    fn fleet_flags_are_validated() {
        assert_eq!(
            run_str(&["serve", "--tenant-max-inflight", "many"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_str(&["serve", "--weight", "heavy"])
                .unwrap_err()
                .exit_code,
            2
        );
        let err = run_str(&["serve", "--weight", "0"]).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("at least 1"), "{}", err.message);
        assert_eq!(
            run_str(&["serve", "--generation", "latest"])
                .unwrap_err()
                .exit_code,
            2
        );
        for flag in ["--snapshot", "--announce", "--advertise"] {
            assert_eq!(
                run_str(&["serve", flag]).unwrap_err().exit_code,
                2,
                "{flag} needs a value"
            );
        }
        assert_eq!(
            run_str(&["loadgen", "--tenants", "everyone"])
                .unwrap_err()
                .exit_code,
            2
        );
        let help = run_str(&["help"]).unwrap();
        for flag in [
            "--snapshot",
            "--tenant-max-inflight",
            "--announce",
            "--advertise",
            "--weight",
            "--generation",
            "--tenants",
        ] {
            assert!(help.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn loadgen_tenants_flag_breaks_the_report_out() {
        let server = gt_serve::Server::start(gt_serve::Config::default()).unwrap();
        let addr = server.local_addr().to_string();
        let out = run_str(&[
            "loadgen",
            "--addr",
            &addr,
            "--conns",
            "2",
            "--duration",
            "0.2",
            "--spec",
            "worst:d=2,n=6",
            "--algo",
            "seq-solve",
            "--tenants",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(out.contains("\"tenants\":{"), "{out}");
        assert!(out.contains("\"t0\":{"), "{out}");
        assert!(out.contains("\"t1\":{"), "{out}");
        server.request_shutdown();
        server.join();
    }

    #[test]
    fn loadgen_runs_against_an_in_process_server() {
        let server = gt_serve::Server::start(gt_serve::Config::default()).unwrap();
        let addr = server.local_addr().to_string();
        let out = run_str(&[
            "loadgen",
            "--addr",
            &addr,
            "--conns",
            "2",
            "--duration",
            "0.3",
            "--spec",
            "worst:d=2,n=6",
            "--algo",
            "seq-solve",
            "--distinct",
            "--server-stats",
            "--json",
        ])
        .unwrap();
        assert!(out.contains("\"ok\":"), "{out}");
        assert!(
            out.contains("\"batch_jobs\":"),
            "--server-stats embeds the server snapshot: {out}"
        );
        assert!(
            out.contains("\"cached\":0"),
            "--distinct defeats the cache: {out}"
        );
        let err = run_str(&["loadgen", "--addr", "127.0.0.1:1", "--duration", "0.2"]).unwrap_err();
        assert_eq!(err.exit_code, 1);
        server.request_shutdown();
        server.join();
    }
}
