//! # gt-cli — the `gtree` command-line tool
//!
//! A thin, dependency-free front end over the workspace:
//!
//! ```text
//! gtree gen  worst:d=2,n=8                      # emit a tree (text format)
//! gtree eval --algo par-solve --width 1 --gen worst:d=2,n=12
//! gtree eval --algo ab --tree position.gt
//! gtree render --gen minmax:d=2,n=3,lo=0,hi=9,seed=1 --dot
//! gtree msgsim --gen worst:d=2,n=10 --processors 4
//! ```
//!
//! All the logic lives in this library (so it is unit-testable); the
//! binary is a two-line wrapper.

pub mod run;
pub mod spec;

pub use run::{run, CliError};
pub use spec::GenSpec;
