//! `gtree`: command-line front end.  See `gt_cli::run` for the logic.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gt_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.exit_code);
        }
    }
}
