//! Property tests for subtree decomposition ([`gt_tree::split`]):
//! splitting a random generated tree at a random depth, sub-evaluating
//! each piece independently, and folding the pieces back through the
//! [`Aggregator`] must reproduce the whole-tree sequential value — for
//! every generator family, and under arbitrary non-trivial initial
//! windows (where equality is against the whole tree evaluated with
//! the *same* fail-soft window).
//!
//! This is the correctness core the distributed split planner leans
//! on: children are handed the aggregator's *current* window at their
//! turn, so narrowing and cutoffs happen here exactly as they do when
//! the pieces are scattered across a fleet.

use gt_tree::minimax::{seq_alphabeta, seq_solve};
use gt_tree::split::{node_mode, split_children, sub_evaluate, Aggregator, SubtreeSpec};
use gt_tree::{GenSpec, TreeSource, Value};
use proptest::prelude::*;

const KINDS: [&str; 8] = [
    "nor",
    "crit",
    "worst",
    "allones",
    "minmax",
    "minmax-best",
    "minmax-worst",
    "minmax-corr",
];

/// The spec text for one generated case.  Minmax leaf values are kept
/// in a narrow band so random windows actually bite (cut and fail
/// soft) instead of always containing every value.
fn spec_text(kind: &str, d: u32, n: u32, seed: u64) -> String {
    if kind == "minmax" {
        format!("{kind}:d={d},n={n},seed={seed},lo=-16,hi=16")
    } else {
        format!("{kind}:d={d},n={n},seed={seed}")
    }
}

/// Evaluate `sub` by splitting it `levels` more times, folding child
/// values through the aggregator.  Each child inherits the window the
/// aggregator holds *at the child's turn*; once the aggregator settles
/// (a cutoff), the remaining children are never evaluated at all —
/// the sequential shadow of the planner's skip rule.
fn split_eval<S: TreeSource>(source: &S, sub: &SubtreeSpec, levels: usize) -> Value {
    let children = split_children(source, sub);
    if levels == 0 || children.len() < 2 {
        return sub_evaluate(sub).unwrap().value;
    }
    let mode = node_mode(&sub.spec, sub.path.len());
    let mut agg = Aggregator::new(mode, children.len() as u32, sub.alpha, sub.beta);
    for child in children {
        if agg.settled() {
            break;
        }
        let (alpha, beta) = agg.window();
        let narrowed = SubtreeSpec {
            alpha,
            beta,
            ..child
        };
        agg.absorb(split_eval(source, &narrowed, levels - 1));
    }
    agg.value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-window decomposition: for every family, splitting at any
    /// depth and aggregating equals the whole-tree sequential solve
    /// (`seq_solve` for NOR families, `seq_alphabeta` for minmax).
    #[test]
    fn split_and_aggregate_matches_whole_tree_for_every_family(
        kind_ix in 0usize..8,
        d in 2u32..4,
        n in 2u32..6,
        seed in 0u64..1000,
        levels in 1usize..4,
    ) {
        let kind = KINDS[kind_ix];
        let spec = GenSpec::parse(&spec_text(kind, d, n, seed)).unwrap();
        let source = spec.build().unwrap();
        let expected = if spec.is_minmax() {
            seq_alphabeta(&source, false).value
        } else {
            seq_solve(&source, false).value
        };
        let got = split_eval(&source, &SubtreeSpec::whole(spec), levels);
        prop_assert_eq!(got, expected, "kind={} d={} n={} seed={}", kind, d, n, seed);
    }

    /// Windowed decomposition: with a non-trivial initial (α, β), the
    /// aggregated value equals the whole tree evaluated under the same
    /// fail-soft window — sub-results computed under handed-down
    /// windows compose exactly, they do not merely bound.
    #[test]
    fn split_respects_a_non_trivial_initial_window(
        kind_ix in 0usize..8,
        d in 2u32..4,
        n in 2u32..6,
        seed in 0u64..1000,
        levels in 1usize..4,
        lo in -24i64..24,
        width in 1i64..48,
    ) {
        let kind = KINDS[kind_ix];
        let spec = GenSpec::parse(&spec_text(kind, d, n, seed)).unwrap();
        let source = spec.build().unwrap();
        let root = SubtreeSpec {
            alpha: lo,
            beta: lo + width,
            ..SubtreeSpec::whole(spec)
        };
        let expected = sub_evaluate(&root).unwrap().value;
        let got = split_eval(&source, &root, levels);
        prop_assert_eq!(
            got, expected,
            "kind={} d={} n={} seed={} window={}..{}",
            kind, d, n, seed, lo, lo + width
        );
    }
}
