//! Property tests for the work-stealing engine ([`gt_tree::par`]):
//! evaluating a random generated tree in parallel must yield the same
//! *value* as the sequential reference — for every generator family,
//! every worker count 1..8, and arbitrary tree widths/heights.  Visit
//! order is not deterministic (siblings settle in arrival order);
//! these properties pin down exactly what is.
//!
//! Under a non-trivial starting window fail-soft semantics make the
//! reported *bound* legitimately order-dependent when the root fails
//! low or high, so the windowed property asserts:
//!
//! * value strictly inside `(α, β)` → exact equality with sequential;
//! * sequential fails low (`≤ α`) → parallel also reports `≤ α`;
//! * sequential fails high (`≥ β`) → parallel also reports `≥ β`.
//!
//! Run in CI with `RUST_TEST_THREADS=4` so the 1..8-worker pools
//! genuinely interleave.

use gt_tree::minimax::{seq_alphabeta, seq_alphabeta_windowed, seq_solve};
use gt_tree::par::{par_alphabeta, par_alphabeta_windowed, par_solve};
use gt_tree::GenSpec;
use proptest::prelude::*;
use std::sync::atomic::AtomicBool;

const KINDS: [&str; 8] = [
    "nor",
    "crit",
    "worst",
    "allones",
    "minmax",
    "minmax-best",
    "minmax-worst",
    "minmax-corr",
];

const MINMAX_KINDS: [&str; 4] = ["minmax", "minmax-best", "minmax-worst", "minmax-corr"];

/// The spec text for one generated case.  Minmax leaf values are kept
/// in a narrow band so random windows actually bite (cut and fail
/// soft) instead of always containing every value.
fn spec_text(kind: &str, d: u32, n: u32, seed: u64) -> String {
    if kind == "minmax" {
        format!("{kind}:d={d},n={n},seed={seed},lo=-16,hi=16")
    } else {
        format!("{kind}:d={d},n={n},seed={seed}")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-window parity: for every family, width, and height, the
    /// parallel value equals the sequential one at every worker count
    /// 1..8 (`par_solve` ≡ `seq_solve` for NOR families,
    /// `par_alphabeta` ≡ `seq_alphabeta` for minmax families).
    #[test]
    fn par_value_equals_seq_value_for_every_family_and_worker_count(
        kind_ix in 0usize..8,
        d in 1u32..5,
        n in 0u32..6,
        seed in 0u64..1000,
    ) {
        let kind = KINDS[kind_ix];
        let spec = GenSpec::parse(&spec_text(kind, d, n, seed)).unwrap();
        let minmax = spec.is_minmax();
        let source = spec.build().unwrap();
        let expected = if minmax {
            seq_alphabeta(&source, false).value
        } else {
            seq_solve(&source, false).value
        };
        let never = AtomicBool::new(false);
        for workers in 1..=8u32 {
            let got = if minmax {
                par_alphabeta(&source, workers, &never).unwrap().value
            } else {
                par_solve(&source, workers, &never).unwrap().value
            };
            prop_assert_eq!(
                got, expected,
                "kind={} d={} n={} seed={} workers={}",
                kind, d, n, seed, workers
            );
        }
    }

    /// Windowed parity: under a non-trivial starting `(α, β)` the
    /// parallel engine agrees with the sequential fail-soft search —
    /// exactly when the value lands strictly inside the window, and on
    /// the same fail side (with a bound at least as informative as the
    /// window edge) when it does not.
    #[test]
    fn par_windowed_value_agrees_with_seq_fail_soft(
        kind_ix in 0usize..4,
        d in 1u32..5,
        n in 0u32..6,
        seed in 0u64..1000,
        lo in -24i64..24,
        width in 1i64..48,
    ) {
        let kind = MINMAX_KINDS[kind_ix];
        let spec = GenSpec::parse(&spec_text(kind, d, n, seed)).unwrap();
        let source = spec.build().unwrap();
        let (alpha, beta) = (lo, lo + width);
        let seq = seq_alphabeta_windowed(&source, false, alpha, beta, true).value;
        let never = AtomicBool::new(false);
        for workers in 1..=8u32 {
            let par = par_alphabeta_windowed(&source, workers, alpha, beta, true, &never)
                .unwrap()
                .value;
            if seq > alpha && seq < beta {
                // Strictly inside the window: the value is exact and
                // order-independent.
                prop_assert_eq!(
                    par, seq,
                    "kind={} d={} n={} seed={} window={}..{} workers={}",
                    kind, d, n, seed, alpha, beta, workers
                );
            } else if seq <= alpha {
                prop_assert!(
                    par <= alpha,
                    "seq failed low ({} <= {}) but par reported {} \
                     (kind={} d={} n={} seed={} window={}..{} workers={})",
                    seq, alpha, par, kind, d, n, seed, alpha, beta, workers
                );
            } else {
                prop_assert!(
                    par >= beta,
                    "seq failed high ({} >= {}) but par reported {} \
                     (kind={} d={} n={} seed={} window={}..{} workers={})",
                    seq, beta, par, kind, d, n, seed, alpha, beta, workers
                );
            }
        }
    }
}
