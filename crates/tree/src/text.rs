//! A compact text format for explicit trees, for interchange, golden
//! files and the command-line tools: a leaf is an integer, an internal
//! node is a parenthesized list of children.
//!
//! ```text
//! ((3 9) (7 1))        MAX( MIN(3,9), MIN(7,1) )
//! (1 (0 1) 0)          mixed arities are fine
//! ```

use crate::explicit::ExplicitTree;
use crate::source::Value;
use std::fmt::Write as _;

/// Serialize a tree into the parenthesized format.
pub fn to_text(tree: &ExplicitTree) -> String {
    let mut out = String::new();
    fn go(t: &ExplicitTree, out: &mut String) {
        match t {
            ExplicitTree::Leaf(v) => {
                let _ = write!(out, "{v}");
            }
            ExplicitTree::Internal(children) => {
                out.push('(');
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    go(c, out);
                }
                out.push(')');
            }
        }
    }
    go(tree, &mut out);
    out
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a tree from the parenthesized format.  Whitespace (including
/// newlines) may appear between tokens; commas are treated as
/// whitespace for convenience.
pub fn from_text(input: &str) -> Result<ExplicitTree, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let tree = parse_node(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            message: "trailing input after tree".into(),
        });
    }
    Ok(tree)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r' | b',') {
        *pos += 1;
    }
}

fn parse_node(bytes: &[u8], pos: &mut usize) -> Result<ExplicitTree, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            at: *pos,
            message: "unexpected end of input".into(),
        }),
        Some(b'(') => {
            *pos += 1;
            let mut children = Vec::new();
            loop {
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b')') => {
                        *pos += 1;
                        break;
                    }
                    None => {
                        return Err(ParseError {
                            at: *pos,
                            message: "unclosed '('".into(),
                        })
                    }
                    _ => children.push(parse_node(bytes, pos)?),
                }
            }
            if children.is_empty() {
                return Err(ParseError {
                    at: *pos,
                    message: "internal node with no children".into(),
                });
            }
            Ok(ExplicitTree::Internal(children))
        }
        Some(_) => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == start || (bytes[start] == b'-' && *pos == start + 1) {
                return Err(ParseError {
                    at: start,
                    message: format!("expected '(' or integer, found {:?}", bytes[start] as char),
                });
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
            let v: Value = text.parse().map_err(|e| ParseError {
                at: start,
                message: format!("bad integer {text:?}: {e}"),
            })?;
            Ok(ExplicitTree::Leaf(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_a_small_tree() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(3), ExplicitTree::leaf(9)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(7), ExplicitTree::leaf(-1)]),
        ]);
        let text = to_text(&t);
        assert_eq!(text, "((3 9) (7 -1))");
        assert_eq!(from_text(&text).unwrap(), t);
    }

    #[test]
    fn parses_commas_and_newlines() {
        let t = from_text("( (3, 9)\n (7, 1) )").unwrap();
        assert_eq!(to_text(&t), "((3 9) (7 1))");
    }

    #[test]
    fn single_leaf() {
        assert_eq!(from_text("42").unwrap(), ExplicitTree::Leaf(42));
        assert_eq!(from_text(" -7 ").unwrap(), ExplicitTree::Leaf(-7));
        assert_eq!(to_text(&ExplicitTree::Leaf(0)), "0");
    }

    #[test]
    fn error_positions_are_reported() {
        assert!(from_text("").is_err());
        assert!(from_text("(").is_err());
        assert!(from_text("()").is_err());
        assert!(from_text("(1) extra").is_err());
        assert!(from_text("(1 x)").is_err());
        assert!(from_text("-").is_err());
        let err = from_text("(1 x)").unwrap_err();
        assert_eq!(err.at, 3);
        assert!(err.to_string().contains("byte 3"));
    }

    fn arb_tree() -> impl Strategy<Value = ExplicitTree> {
        let leaf = (-1000i64..1000).prop_map(ExplicitTree::Leaf);
        leaf.prop_recursive(4, 48, 4, |inner| {
            prop::collection::vec(inner, 1..=4).prop_map(ExplicitTree::Internal)
        })
    }

    proptest! {
        #[test]
        fn text_round_trips(t in arb_tree()) {
            let text = to_text(&t);
            prop_assert_eq!(from_text(&text).unwrap(), t);
        }

        #[test]
        fn parser_never_panics_on_garbage(s in "[ ()0-9,\\-xyz]{0,64}") {
            let _ = from_text(&s); // Ok or Err, never a panic
        }
    }
}
