//! Rendering explicit trees: ASCII art for terminals and Graphviz DOT
//! for papers/slides.  Used by the examples and handy when debugging a
//! counterexample instance.

use crate::explicit::ExplicitTree;
use std::fmt::Write as _;

/// Render an [`ExplicitTree`] as indented ASCII, marking MAX/MIN levels
/// (root is MAX).
pub fn ascii(tree: &ExplicitTree) -> String {
    let mut out = String::new();
    fn go(t: &ExplicitTree, depth: usize, prefix: &mut String, last: bool, out: &mut String) {
        let connector = if depth == 0 {
            ""
        } else if last {
            "└── "
        } else {
            "├── "
        };
        let label = match t {
            ExplicitTree::Leaf(v) => format!("{v}"),
            ExplicitTree::Internal(_) => {
                if depth.is_multiple_of(2) {
                    "MAX".to_string()
                } else {
                    "MIN".to_string()
                }
            }
        };
        let _ = writeln!(out, "{prefix}{connector}{label}");
        if let ExplicitTree::Internal(children) = t {
            let extension = if depth == 0 {
                ""
            } else if last {
                "    "
            } else {
                "│   "
            };
            prefix.push_str(extension);
            for (i, c) in children.iter().enumerate() {
                go(c, depth + 1, prefix, i + 1 == children.len(), out);
            }
            prefix.truncate(prefix.len() - extension.len());
        }
    }
    go(tree, 0, &mut String::new(), true, &mut out);
    out
}

/// Render an [`ExplicitTree`] as a Graphviz DOT digraph.  Internal
/// nodes alternate MAX (box) and MIN (circle); leaves are plain labels.
pub fn dot(tree: &ExplicitTree, name: &str) -> String {
    let mut out = format!("digraph {name} {{\n  node [fontname=\"monospace\"];\n");
    let mut next_id = 0usize;
    fn go(t: &ExplicitTree, depth: usize, next_id: &mut usize, out: &mut String) -> usize {
        let my = *next_id;
        *next_id += 1;
        match t {
            ExplicitTree::Leaf(v) => {
                let _ = writeln!(out, "  n{my} [shape=plaintext, label=\"{v}\"];");
            }
            ExplicitTree::Internal(children) => {
                let (shape, label) = if depth.is_multiple_of(2) {
                    ("box", "MAX")
                } else {
                    ("circle", "MIN")
                };
                let _ = writeln!(out, "  n{my} [shape={shape}, label=\"{label}\"];");
                for c in children {
                    let cid = go(c, depth + 1, next_id, out);
                    let _ = writeln!(out, "  n{my} -> n{cid};");
                }
            }
        }
        my
    }
    go(tree, 0, &mut next_id, &mut out);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExplicitTree {
        ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(3), ExplicitTree::leaf(9)]),
            ExplicitTree::leaf(7),
        ])
    }

    #[test]
    fn ascii_contains_all_leaves_and_levels() {
        let s = ascii(&sample());
        assert!(s.contains("MAX"));
        assert!(s.contains("MIN"));
        for leaf in ["3", "9", "7"] {
            assert!(s.contains(leaf), "missing {leaf} in:\n{s}");
        }
        // One line per node.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn ascii_single_leaf() {
        assert_eq!(ascii(&ExplicitTree::leaf(42)).trim(), "42");
    }

    #[test]
    fn dot_is_well_formed() {
        let s = dot(&sample(), "t");
        assert!(s.starts_with("digraph t {"));
        assert!(s.trim_end().ends_with('}'));
        // 5 nodes, 4 edges.
        assert_eq!(s.matches("->").count(), 4);
        assert_eq!(s.matches("shape=").count(), 5);
        assert_eq!(s.matches("MAX").count(), 1);
        assert_eq!(s.matches("MIN").count(), 1);
    }
}
