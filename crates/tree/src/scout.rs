//! SCOUT (Pearl, *Heuristics* 1984): the test-then-search MIN/MAX
//! evaluation algorithm.
//!
//! Section 6 of the paper remarks that the randomized version of a
//! variant of sequential α-β, *SCOUT*, was proved optimal among
//! randomized sequential algorithms (Saks–Wigderson).  SCOUT evaluates
//! the first child exactly, then for each later child first runs a
//! cheap Boolean *test* ("is val(child) > v?") and re-searches exactly
//! only when the test succeeds.  We implement it as a second sequential
//! baseline, with the same counters as the α-β reference, plus its
//! randomized counterpart via [`crate::source::Permuted`].

use crate::source::{Permuted, TreeSource, Value};

/// Counters from a SCOUT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoutStats {
    /// The exact root value.
    pub value: Value,
    /// Leaf evaluations (tests and exact searches both count; repeated
    /// evaluation of the same leaf counts each time, as SCOUT has no
    /// memory).
    pub leaves_evaluated: u64,
    /// Leaf evaluations performed inside Boolean tests only.
    pub test_leaves: u64,
    /// Number of re-searches (tests that succeeded and forced an exact
    /// evaluation).
    pub researches: u64,
}

/// Evaluate a MIN/MAX tree with SCOUT (root is MAX).
///
/// ```
/// use gt_tree::scout::scout;
/// use gt_tree::gen::UniformSource;
/// use gt_tree::minimax::minimax_value;
///
/// let tree = UniformSource::minmax_iid(2, 6, 0, 50, 1);
/// assert_eq!(scout(&tree).value, minimax_value(&tree));
/// ```
pub fn scout<S: TreeSource>(source: &S) -> ScoutStats {
    let mut st = ScoutStats {
        value: 0,
        leaves_evaluated: 0,
        test_leaves: 0,
        researches: 0,
    };
    st.value = eval(source, &mut Vec::new(), true, &mut st);
    st
}

/// Randomized SCOUT: SCOUT on a randomly permuted tree (Section 6's
/// randomization device).
pub fn r_scout<S: TreeSource>(source: S, seed: u64) -> ScoutStats {
    let permuted = Permuted::new(source, seed);
    scout(&permuted)
}

fn eval<S: TreeSource>(s: &S, path: &mut Vec<u32>, maximizing: bool, st: &mut ScoutStats) -> Value {
    let d = s.arity(path);
    if d == 0 {
        st.leaves_evaluated += 1;
        return s.leaf_value(path);
    }
    path.push(0);
    let mut best = eval(s, path, !maximizing, st);
    path.pop();
    for i in 1..d {
        path.push(i);
        // TEST: can child i beat `best` for the mover?
        let beats = if maximizing {
            test_gt(s, path, best, !maximizing, st)
        } else {
            test_lt(s, path, best, !maximizing, st)
        };
        if beats {
            st.researches += 1;
            best = eval(s, path, !maximizing, st);
        }
        path.pop();
    }
    best
}

/// Boolean test: is `val(node) > bound`?
fn test_gt<S: TreeSource>(
    s: &S,
    path: &mut Vec<u32>,
    bound: Value,
    maximizing: bool,
    st: &mut ScoutStats,
) -> bool {
    let d = s.arity(path);
    if d == 0 {
        st.leaves_evaluated += 1;
        st.test_leaves += 1;
        return s.leaf_value(path) > bound;
    }
    if maximizing {
        // MAX > bound iff some child > bound.
        for i in 0..d {
            path.push(i);
            let r = test_gt(s, path, bound, false, st);
            path.pop();
            if r {
                return true;
            }
        }
        false
    } else {
        // MIN > bound iff all children > bound.
        for i in 0..d {
            path.push(i);
            let r = test_gt(s, path, bound, true, st);
            path.pop();
            if !r {
                return false;
            }
        }
        true
    }
}

/// Boolean test: is `val(node) < bound`?
fn test_lt<S: TreeSource>(
    s: &S,
    path: &mut Vec<u32>,
    bound: Value,
    maximizing: bool,
    st: &mut ScoutStats,
) -> bool {
    let d = s.arity(path);
    if d == 0 {
        st.leaves_evaluated += 1;
        st.test_leaves += 1;
        return s.leaf_value(path) < bound;
    }
    if maximizing {
        // MAX < bound iff all children < bound.
        for i in 0..d {
            path.push(i);
            let r = test_lt(s, path, bound, false, st);
            path.pop();
            if !r {
                return false;
            }
        }
        true
    } else {
        // MIN < bound iff some child < bound.
        for i in 0..d {
            path.push(i);
            let r = test_lt(s, path, bound, true, st);
            path.pop();
            if r {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UniformSource;
    use crate::minimax::{minimax_value, seq_alphabeta};
    use crate::ExplicitTree;

    #[test]
    fn scout_is_exact_on_small_trees() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(3), ExplicitTree::leaf(9)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(7), ExplicitTree::leaf(1)]),
        ]);
        let st = scout(&t);
        assert_eq!(st.value, 3);
    }

    #[test]
    fn scout_matches_minimax_on_random_trees() {
        for seed in 0..20 {
            for (d, n) in [(2u32, 6u32), (3, 4)] {
                let s = UniformSource::minmax_iid(d, n, -50, 50, seed);
                assert_eq!(
                    scout(&s).value,
                    minimax_value(&s),
                    "d={d} n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn scout_handles_duplicate_values() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(2, 6, 0, 2, seed);
            assert_eq!(scout(&s).value, minimax_value(&s), "seed {seed}");
        }
    }

    #[test]
    fn scout_single_leaf_and_unary_chain() {
        assert_eq!(scout(&ExplicitTree::leaf(5)).value, 5);
        let chain =
            ExplicitTree::internal(vec![ExplicitTree::internal(vec![ExplicitTree::leaf(-3)])]);
        assert_eq!(scout(&chain).value, -3);
    }

    #[test]
    fn scout_never_researches_on_best_ordered_trees() {
        // All-equal leaves: no later child ever beats the first, so every
        // test fails and nothing is re-searched.
        let s = UniformSource::minmax_best_ordered(3, 4, 7);
        let st = scout(&s);
        assert_eq!(st.researches, 0);
        assert_eq!(st.value, 7);
    }

    #[test]
    fn scout_researches_on_worst_ordered_trees() {
        // Worst-to-best ordering: every sibling beats the incumbent, so
        // tests keep succeeding.
        let s = UniformSource::minmax_worst_ordered(2, 6);
        let st = scout(&s);
        assert!(st.researches > 0);
        assert_eq!(st.value, minimax_value(&s));
    }

    #[test]
    fn scout_is_competitive_with_alphabeta_on_random_trees() {
        // Classical result: SCOUT and alpha-beta are within a small
        // factor of each other; check SCOUT isn't pathologically worse.
        let mut scout_total = 0u64;
        let mut ab_total = 0u64;
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(2, 8, 0, 1 << 20, seed);
            scout_total += scout(&s).leaves_evaluated;
            ab_total += seq_alphabeta(&s, false).leaves_evaluated;
        }
        assert!(
            scout_total < 3 * ab_total,
            "SCOUT {scout_total} vs alpha-beta {ab_total}"
        );
    }

    #[test]
    fn r_scout_is_exact_for_every_seed() {
        let s = UniformSource::minmax_iid(2, 5, 0, 100, 3);
        let truth = minimax_value(&s);
        for seed in 0..20 {
            assert_eq!(r_scout(&s, seed).value, truth, "seed {seed}");
        }
    }

    #[test]
    fn r_scout_beats_deterministic_scout_on_worst_ordered() {
        // On the worst-ordered instance the deterministic child order is
        // maximally misleading; random orders are better in expectation.
        let s = UniformSource::minmax_worst_ordered(2, 8);
        let det = scout(&s).leaves_evaluated as f64;
        let mean: f64 = (0..16)
            .map(|seed| r_scout(&s, seed).leaves_evaluated as f64)
            .sum::<f64>()
            / 16.0;
        assert!(mean < det, "E[R-SCOUT] {mean} should beat SCOUT {det}");
    }

    #[test]
    fn test_leaves_are_counted_separately() {
        let s = UniformSource::minmax_iid(2, 6, 0, 1 << 10, 1);
        let st = scout(&s);
        assert!(st.test_leaves > 0);
        assert!(st.test_leaves <= st.leaves_evaluated);
    }
}
