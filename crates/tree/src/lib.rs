//! # gt-tree — game-tree substrate
//!
//! This crate provides the tree machinery that every other crate in the
//! Karp–Zhang reproduction builds on:
//!
//! * [`TreeSource`] — an *implicit* description of a game tree: given the
//!   path of a node, report its arity and (for leaves) its value.  This is
//!   exactly the interface the paper's *node-expansion model* assumes: the
//!   algorithm is handed only the root and discovers the rest by expanding
//!   nodes.
//! * [`LazyTree`] — an arena that materializes a `TreeSource` on demand.
//!   Both evaluation models in the paper run on top of it; in the
//!   leaf-evaluation model expansion is free, in the node-expansion model
//!   it is the unit of work.
//! * [`gen`] — workload generators: uniform trees `B(d,n)` / `M(d,n)` with
//!   i.i.d. leaves, worst-case instances that defeat all pruning,
//!   best-ordered instances that meet the Knuth–Moore minimum, and
//!   near-uniform trees (Corollary 2).
//! * [`explicit`] — small owned trees used by tests, proptest strategies
//!   and the skeleton construction.
//! * [`minimax`] — reference (ground-truth) evaluators: full NOR / minimax
//!   evaluation with no pruning, plus classical sequential left-to-right
//!   SOLVE and fail-hard alpha-beta leaf counters.
//! * [`skeleton`] — the skeleton `H_T` of Section 3: the subtree spanned
//!   by the leaves the sequential algorithm evaluates.
//! * [`proof`] — proof trees and the Fact 1 / Fact 2 lower bounds.

pub mod andor;
pub mod arena;
pub mod explicit;
pub mod gen;
#[macro_use]
pub mod macros;
pub mod minimax;
pub mod par;
pub mod path;
pub mod proof;
pub mod render;
pub mod scout;
pub mod skeleton;
pub mod source;
pub mod spec;
pub mod split;
pub mod sss;
pub mod stats;
pub mod text;

pub use arena::{LazyTree, NodeId, NONE};
pub use explicit::ExplicitTree;
pub use par::{par_alphabeta, par_alphabeta_windowed, par_solve, AtomicWindow, ParStats};
pub use source::{Cancelled, NodeKind, TreeSource, Value};
pub use spec::{GenSpec, SourceVisitor};
pub use split::{Aggregator, NodeMode, SubtreeSpec, SubtreeView};

/// `B(d, n)`: the class of uniform `d`-ary NOR (AND/OR) trees of height `n`.
///
/// This is a convenience descriptor used by generators and experiment
/// drivers; the trees themselves are produced by [`gen::UniformSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uniform {
    /// Branching factor `d ≥ 1`.
    pub degree: u32,
    /// Height `n ≥ 0` (leaves are at depth `n`).
    pub height: u32,
}

impl Uniform {
    /// Create a descriptor for `B(d,n)` / `M(d,n)`.
    pub fn new(degree: u32, height: u32) -> Self {
        assert!(degree >= 1, "degree must be at least 1");
        Self { degree, height }
    }

    /// Total number of leaves `d^n` (saturating at `u64::MAX`).
    pub fn leaf_count(&self) -> u64 {
        (self.degree as u64)
            .checked_pow(self.height)
            .unwrap_or(u64::MAX)
    }

    /// Total number of nodes `(d^{n+1} - 1)/(d - 1)` (saturating).
    pub fn node_count(&self) -> u64 {
        if self.degree == 1 {
            return self.height as u64 + 1;
        }
        let mut total: u64 = 0;
        let mut level: u64 = 1;
        for _ in 0..=self.height {
            total = total.saturating_add(level);
            level = level.saturating_mul(self.degree as u64);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts() {
        let u = Uniform::new(2, 3);
        assert_eq!(u.leaf_count(), 8);
        assert_eq!(u.node_count(), 15);
        let u = Uniform::new(3, 2);
        assert_eq!(u.leaf_count(), 9);
        assert_eq!(u.node_count(), 13);
        let u = Uniform::new(1, 5);
        assert_eq!(u.leaf_count(), 1);
        assert_eq!(u.node_count(), 6);
    }

    #[test]
    fn uniform_height_zero_is_single_leaf() {
        let u = Uniform::new(4, 0);
        assert_eq!(u.leaf_count(), 1);
        assert_eq!(u.node_count(), 1);
    }

    #[test]
    #[should_panic]
    fn uniform_zero_degree_rejected() {
        Uniform::new(0, 3);
    }
}
