//! Reference (ground-truth) evaluators.
//!
//! Everything here is a plain recursive algorithm over a [`TreeSource`]:
//!
//! * [`nor_value`] / [`minimax_value`] — exhaustive evaluation with no
//!   pruning (the definitionally-correct value every other algorithm must
//!   agree with);
//! * [`seq_solve`] — the paper's *Sequential SOLVE* (program `S-SOLVE`):
//!   left-to-right NOR evaluation with early exit, reporting `S(T)` and,
//!   optionally, the evaluated leaf set `L(T)` (needed to build the
//!   skeleton `H_T`);
//! * [`seq_alphabeta`] — the paper's *Sequential α-β* realized as the
//!   classical fail-hard depth-first procedure with `α ≥ β` cutoffs,
//!   reporting `S̃(T)` and `L̃(T)`.
//!
//! These recursive versions exist alongside the step-driven simulators in
//! `gt-sim` for two reasons: they are *fast* (no per-step frontier scan),
//! and they provide an independent implementation to cross-check the
//! simulators against (width 0 of the parallel algorithms must reproduce
//! them step for step).

use crate::source::{Cancelled, TreeSource, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// How many leaf evaluations pass between cancellation-flag checks in
/// the cancellable baselines.  Power of two so the check is a mask.
const CANCEL_CHECK_MASK: u64 = 1024 - 1;

/// Statistics from a sequential evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqStats {
    /// The value computed for the root.
    pub value: Value,
    /// Leaves evaluated — the paper's `S(T)` (or `S̃(T)` for α-β).
    pub leaves_evaluated: u64,
    /// Nodes expanded (visited), the node-expansion model's `S*(T)`.
    pub nodes_expanded: u64,
    /// Pruning events: internal nodes whose remaining children were
    /// skipped (NOR short-circuit on a nonzero child; `α ≥ β` cutoffs).
    pub cutoffs: u64,
    /// The evaluated leaf paths in evaluation order, when requested.
    pub leaf_paths: Option<Vec<Vec<u32>>>,
}

/// Exhaustively evaluate a NOR tree: a node is `1` iff all children are
/// `0`; leaves carry their own values.
pub fn nor_value<S: TreeSource>(source: &S) -> Value {
    fn go<S: TreeSource>(s: &S, path: &mut Vec<u32>) -> Value {
        let d = s.arity(path);
        if d == 0 {
            return s.leaf_value(path);
        }
        let mut all_zero = true;
        for i in 0..d {
            path.push(i);
            if go(s, path) != 0 {
                all_zero = false;
            }
            path.pop();
        }
        Value::from(all_zero)
    }
    go(source, &mut Vec::new())
}

/// Exhaustively evaluate a MIN/MAX tree (root is MAX, levels alternate).
pub fn minimax_value<S: TreeSource>(source: &S) -> Value {
    fn go<S: TreeSource>(s: &S, path: &mut Vec<u32>, maximizing: bool) -> Value {
        let d = s.arity(path);
        if d == 0 {
            return s.leaf_value(path);
        }
        let mut best = if maximizing { Value::MIN } else { Value::MAX };
        for i in 0..d {
            path.push(i);
            let v = go(s, path, !maximizing);
            path.pop();
            best = if maximizing { best.max(v) } else { best.min(v) };
        }
        best
    }
    go(source, &mut Vec::new(), true)
}

/// The value of an AND/OR tree whose NOR representation is `source`:
/// identical up to the complementation noted in Section 2.  Provided so
/// users thinking in AND/OR terms get the conventional answer (root is an
/// OR node).
pub fn and_or_value<S: TreeSource>(source: &S) -> Value {
    // An AND/OR tree with OR root converts to a NOR tree computing the
    // complement of the OR-root value when leaves are complemented; for
    // the uniform trees studied here we simply evaluate by minimax over
    // booleans: OR = max, AND = min.
    fn go<S: TreeSource>(s: &S, path: &mut Vec<u32>, or_level: bool) -> Value {
        let d = s.arity(path);
        if d == 0 {
            return s.leaf_value(path);
        }
        let mut best = if or_level { 0 } else { 1 };
        for i in 0..d {
            path.push(i);
            let v = go(s, path, !or_level);
            path.pop();
            best = if or_level { best.max(v) } else { best.min(v) };
        }
        best
    }
    go(source, &mut Vec::new(), true)
}

/// Sequential SOLVE (the left-to-right algorithm, program `S-SOLVE`).
///
/// Set `record_leaves` to also collect `L(T)`, the evaluated leaf set, in
/// evaluation order — the ingredient of the skeleton `H_T`.
pub fn seq_solve<S: TreeSource>(source: &S, record_leaves: bool) -> SeqStats {
    let never = AtomicBool::new(false);
    seq_solve_cancellable(source, record_leaves, &never).expect("never cancelled")
}

/// [`seq_solve`] with cooperative cancellation: the flag is sampled every
/// [`CANCEL_CHECK_MASK`]` + 1` leaf evaluations (cheap enough to be free)
/// and a set flag abandons the run with [`Cancelled`].
pub fn seq_solve_cancellable<S: TreeSource>(
    source: &S,
    record_leaves: bool,
    cancel: &AtomicBool,
) -> Result<SeqStats, Cancelled> {
    struct Ctx<'a, S> {
        s: &'a S,
        cancel: &'a AtomicBool,
        leaves: u64,
        expanded: u64,
        cutoffs: u64,
        record: Option<Vec<Vec<u32>>>,
    }
    fn go<S: TreeSource>(c: &mut Ctx<'_, S>, path: &mut Vec<u32>) -> Result<Value, Cancelled> {
        c.expanded += 1;
        let d = c.s.arity(path);
        if d == 0 {
            if c.leaves & CANCEL_CHECK_MASK == 0 && c.cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            c.leaves += 1;
            if let Some(r) = &mut c.record {
                r.push(path.clone());
            }
            return Ok(c.s.leaf_value(path));
        }
        for i in 0..d {
            path.push(i);
            let b = go(c, path);
            path.pop();
            if b? != 0 {
                if i + 1 < d {
                    c.cutoffs += 1;
                }
                return Ok(0);
            }
        }
        Ok(1)
    }
    let mut c = Ctx {
        s: source,
        cancel,
        leaves: 0,
        expanded: 0,
        cutoffs: 0,
        record: record_leaves.then(Vec::new),
    };
    let value = go(&mut c, &mut Vec::new())?;
    Ok(SeqStats {
        value,
        leaves_evaluated: c.leaves,
        nodes_expanded: c.expanded,
        cutoffs: c.cutoffs,
        leaf_paths: c.record,
    })
}

/// Sequential α-β: fail-hard depth-first search with the paper's `α ≥ β`
/// pruning rule (which realizes both shallow and deep cutoffs).
pub fn seq_alphabeta<S: TreeSource>(source: &S, record_leaves: bool) -> SeqStats {
    let never = AtomicBool::new(false);
    seq_alphabeta_cancellable(source, record_leaves, &never).expect("never cancelled")
}

/// [`seq_alphabeta`] with cooperative cancellation (see
/// [`seq_solve_cancellable`] for the sampling cadence).
pub fn seq_alphabeta_cancellable<S: TreeSource>(
    source: &S,
    record_leaves: bool,
    cancel: &AtomicBool,
) -> Result<SeqStats, Cancelled> {
    seq_alphabeta_windowed_cancellable(source, record_leaves, Value::MIN, Value::MAX, true, cancel)
}

/// α-β from an arbitrary starting window and player: the entry point
/// for *partial* (subtree) evaluation, where the caller has already
/// established bounds at an ancestor and knows which player moves at
/// the subtree root (`maximizing`).  With `(Value::MIN, Value::MAX,
/// true)` this is exactly [`seq_alphabeta`].
///
/// The search is fail-soft: the returned value may fall outside
/// `(alpha, beta)`, in which case it is a bound on the true value (an
/// upper bound when `value <= alpha`, a lower bound when
/// `value >= beta`) rather than the value itself.
pub fn seq_alphabeta_windowed<S: TreeSource>(
    source: &S,
    record_leaves: bool,
    alpha: Value,
    beta: Value,
    maximizing: bool,
) -> SeqStats {
    let never = AtomicBool::new(false);
    seq_alphabeta_windowed_cancellable(source, record_leaves, alpha, beta, maximizing, &never)
        .expect("never cancelled")
}

/// [`seq_alphabeta_windowed`] with cooperative cancellation.
pub fn seq_alphabeta_windowed_cancellable<S: TreeSource>(
    source: &S,
    record_leaves: bool,
    alpha: Value,
    beta: Value,
    maximizing: bool,
    cancel: &AtomicBool,
) -> Result<SeqStats, Cancelled> {
    struct Ctx<'a, S> {
        s: &'a S,
        cancel: &'a AtomicBool,
        leaves: u64,
        expanded: u64,
        cutoffs: u64,
        record: Option<Vec<Vec<u32>>>,
    }
    fn go<S: TreeSource>(
        c: &mut Ctx<'_, S>,
        path: &mut Vec<u32>,
        mut alpha: Value,
        mut beta: Value,
        maximizing: bool,
    ) -> Result<Value, Cancelled> {
        c.expanded += 1;
        let d = c.s.arity(path);
        if d == 0 {
            if c.leaves & CANCEL_CHECK_MASK == 0 && c.cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            c.leaves += 1;
            if let Some(r) = &mut c.record {
                r.push(path.clone());
            }
            return Ok(c.s.leaf_value(path));
        }
        let mut best = if maximizing { Value::MIN } else { Value::MAX };
        for i in 0..d {
            path.push(i);
            let v = go(c, path, alpha, beta, !maximizing);
            path.pop();
            let v = v?;
            if maximizing {
                best = best.max(v);
                alpha = alpha.max(best);
            } else {
                best = best.min(v);
                beta = beta.min(best);
            }
            if alpha >= beta {
                if i + 1 < d {
                    c.cutoffs += 1;
                }
                break;
            }
        }
        Ok(best)
    }
    let mut c = Ctx {
        s: source,
        cancel,
        leaves: 0,
        expanded: 0,
        cutoffs: 0,
        record: record_leaves.then(Vec::new),
    };
    let value = go(&mut c, &mut Vec::new(), alpha, beta, maximizing)?;
    Ok(SeqStats {
        value,
        leaves_evaluated: c.leaves,
        nodes_expanded: c.expanded,
        cutoffs: c.cutoffs,
        leaf_paths: c.record,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;
    use crate::gen::UniformSource;

    fn nor_sample() -> ExplicitTree {
        // NOR tree: root(NOR) over [NOR(1,0)=0, leaf 0] → children (0,0) → 1.
        ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(0)]),
            ExplicitTree::leaf(0),
        ])
    }

    #[test]
    fn nor_value_ground_truth() {
        assert_eq!(nor_value(&nor_sample()), 1);
        assert_eq!(nor_value(&ExplicitTree::leaf(0)), 0);
        assert_eq!(nor_value(&ExplicitTree::leaf(1)), 1);
    }

    #[test]
    fn seq_solve_early_exit() {
        // Root children: first child evaluates to 1 ⇒ root 0 without
        // touching the second subtree.
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(0)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(0)]),
        ]);
        let st = seq_solve(&t, true);
        assert_eq!(st.value, 0);
        assert_eq!(st.leaves_evaluated, 2);
        assert_eq!(st.leaf_paths.unwrap(), vec![vec![0, 0], vec![0, 1]]);
    }

    #[test]
    fn seq_solve_stops_within_a_node_on_a_one() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(1),
            ExplicitTree::leaf(0),
            ExplicitTree::leaf(0),
        ]);
        let st = seq_solve(&t, false);
        assert_eq!(st.value, 0);
        assert_eq!(st.leaves_evaluated, 1);
        assert_eq!(st.nodes_expanded, 2); // root + first leaf
    }

    #[test]
    fn worst_case_nor_evaluates_everything() {
        for (d, n) in [(2u32, 6u32), (3, 4), (4, 3)] {
            let s = UniformSource::nor_worst_case(d, n);
            let st = seq_solve(&s, false);
            assert_eq!(st.leaves_evaluated, (d as u64).pow(n), "d={d} n={n}");
            assert_eq!(st.value, nor_value(&s));
        }
    }

    #[test]
    fn minimax_matches_exhaustive_on_small_tree() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(3), ExplicitTree::leaf(9)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(7), ExplicitTree::leaf(1)]),
        ]);
        // MAX( MIN(3,9)=3, MIN(7,1)=1 ) = 3
        assert_eq!(minimax_value(&t), 3);
        let st = seq_alphabeta(&t, true);
        assert_eq!(st.value, 3);
        // Alpha-beta: after MIN(3,9)=3, second MIN sees 7 then 1; with
        // fail-hard windows the 1 closes the window after being read.
        assert!(st.leaves_evaluated <= 4);
    }

    #[test]
    fn alphabeta_cutoff_happens() {
        // MAX(MIN(5, _), MIN(4, X)): after the first MIN returns ≤5 is
        // known exactly (5 if second leaf ≥5); second MIN's first leaf 4
        // with α=5 ⇒ β=4 ≤ α ⇒ X never evaluated.
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(5), ExplicitTree::leaf(8)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(4), ExplicitTree::leaf(100)]),
        ]);
        let st = seq_alphabeta(&t, true);
        assert_eq!(st.value, 5);
        assert_eq!(st.leaves_evaluated, 3);
        assert_eq!(
            st.leaf_paths.unwrap(),
            vec![vec![0, 0], vec![0, 1], vec![1, 0]]
        );
    }

    #[test]
    fn alphabeta_agrees_with_minimax_on_iid_trees() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(3, 4, 0, 100, seed);
            assert_eq!(seq_alphabeta(&s, false).value, minimax_value(&s));
        }
    }

    #[test]
    fn best_ordered_meets_knuth_moore_minimum() {
        for (d, n) in [(2u32, 6u32), (3, 4), (4, 4), (5, 3)] {
            let s = UniformSource::minmax_best_ordered(d, n, 42);
            let st = seq_alphabeta(&s, false);
            let expect = (d as u64).pow(n / 2) + (d as u64).pow(n.div_ceil(2)) - 1;
            assert_eq!(st.leaves_evaluated, expect, "d={d} n={n}");
        }
    }

    #[test]
    fn worst_ordered_defeats_all_pruning() {
        for (d, n) in [(2u32, 6u32), (3, 4), (4, 3)] {
            let s = UniformSource::minmax_worst_ordered(d, n);
            let st = seq_alphabeta(&s, false);
            assert_eq!(st.leaves_evaluated, (d as u64).pow(n), "d={d} n={n}");
            assert_eq!(st.value, minimax_value(&s));
        }
    }

    #[test]
    fn windowed_alphabeta_full_window_is_plain_alphabeta() {
        let s = UniformSource::minmax_iid(3, 4, 0, 100, 13);
        let plain = seq_alphabeta(&s, true);
        let windowed = seq_alphabeta_windowed(&s, true, Value::MIN, Value::MAX, true);
        assert_eq!(plain, windowed);
    }

    #[test]
    fn windowed_alphabeta_narrow_window_prunes_more_but_bounds_truth() {
        for seed in 0..20 {
            let s = UniformSource::minmax_iid(3, 4, 0, 100, seed);
            let truth = minimax_value(&s);
            let full = seq_alphabeta(&s, false);
            let (alpha, beta) = (truth - 5, truth + 5);
            let narrow = seq_alphabeta_windowed(&s, false, alpha, beta, true);
            // The truth lies strictly inside the window, so the windowed
            // search returns it exactly — with no more work than the
            // full-window search.
            assert_eq!(narrow.value, truth, "seed {seed}");
            assert!(narrow.leaves_evaluated <= full.leaves_evaluated);
            // A window strictly above the truth fails low: the result is
            // an upper bound on the truth, at or below α.
            let lo = seq_alphabeta_windowed(&s, false, truth + 1, truth + 10, true);
            assert!(lo.value >= truth && lo.value <= truth + 1, "seed {seed}");
            // A window strictly below fails high: a lower bound, ≥ β.
            let hi = seq_alphabeta_windowed(&s, false, truth - 10, truth - 1, true);
            assert!(hi.value <= truth && hi.value >= truth - 1, "seed {seed}");
        }
    }

    #[test]
    fn cancellable_baselines_match_plain_runs_when_never_cancelled() {
        let never = AtomicBool::new(false);
        let s = UniformSource::nor_iid(2, 8, 0.5, 7);
        let plain = seq_solve(&s, true);
        let c = seq_solve_cancellable(&s, true, &never).unwrap();
        assert_eq!(plain, c);
        let m = UniformSource::minmax_iid(3, 4, 0, 50, 7);
        let plain = seq_alphabeta(&m, true);
        let c = seq_alphabeta_cancellable(&m, true, &never).unwrap();
        assert_eq!(plain, c);
    }

    #[test]
    fn preset_flag_cancels_before_any_leaf() {
        let set = AtomicBool::new(true);
        let s = UniformSource::nor_worst_case(2, 10);
        assert_eq!(seq_solve_cancellable(&s, false, &set), Err(Cancelled));
        let m = UniformSource::minmax_worst_ordered(2, 10);
        assert_eq!(seq_alphabeta_cancellable(&m, false, &set), Err(Cancelled));
    }

    #[test]
    fn flag_set_mid_run_stops_within_one_check_window() {
        // A source that flips the flag after 3000 leaf reads: the run
        // must abandon at the next 1024-boundary check, well short of
        // the tree's 2^14 leaves.
        struct Tripwire<'a, L> {
            inner: UniformSource<L>,
            reads: std::sync::atomic::AtomicU64,
            flag: &'a AtomicBool,
        }
        impl<L> TreeSource for Tripwire<'_, L>
        where
            UniformSource<L>: TreeSource,
        {
            fn arity(&self, path: &[u32]) -> u32 {
                self.inner.arity(path)
            }
            fn leaf_value(&self, path: &[u32]) -> Value {
                if self.reads.fetch_add(1, Ordering::Relaxed) == 3000 {
                    self.flag.store(true, Ordering::Relaxed);
                }
                self.inner.leaf_value(path)
            }
        }
        let flag = AtomicBool::new(false);
        let s = Tripwire {
            inner: UniformSource::nor_worst_case(2, 14),
            reads: std::sync::atomic::AtomicU64::new(0),
            flag: &flag,
        };
        assert_eq!(seq_solve_cancellable(&s, false, &flag), Err(Cancelled));
        let reads = s.reads.load(Ordering::Relaxed);
        assert!(
            (3000..3000 + 2048).contains(&reads),
            "stopped after {reads} leaves"
        );
    }

    #[test]
    fn and_or_value_single_leaf() {
        assert_eq!(and_or_value(&ExplicitTree::leaf(1)), 1);
        let t = ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(1)]);
        // OR(0, 1) = 1.
        assert_eq!(and_or_value(&t), 1);
    }
}
