//! [`ExplicitTree`]: a small, owned, recursive tree representation.
//!
//! Explicit trees serve three roles in the reproduction:
//!
//! 1. ground truth in unit and property tests (arbitrary shapes, not just
//!    uniform ones — this is what exercises Corollary 2's "close to
//!    uniform" relaxation);
//! 2. the output of the skeleton construction `H_T` (Section 3), which is
//!    an explicit subtree of the input tree; and
//! 3. a [`TreeSource`] implementation so every simulator can run on them.

use crate::source::{TreeSource, Value};

/// An owned game tree.  NOR trees store `0`/`1` leaves; MIN/MAX trees use
/// arbitrary values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplicitTree {
    /// A leaf with its value.
    Leaf(Value),
    /// An internal node and its ordered children (never empty).
    Internal(Vec<ExplicitTree>),
}

impl ExplicitTree {
    /// A leaf node.
    pub fn leaf(v: Value) -> Self {
        ExplicitTree::Leaf(v)
    }

    /// An internal node; panics on an empty child list (the paper's trees
    /// have no childless internal nodes).
    pub fn internal(children: Vec<ExplicitTree>) -> Self {
        assert!(!children.is_empty(), "internal node needs children");
        ExplicitTree::Internal(children)
    }

    /// Number of children (0 for leaves). Named `degree` to avoid
    /// shadowing [`TreeSource::arity`].
    pub fn degree(&self) -> u32 {
        match self {
            ExplicitTree::Leaf(_) => 0,
            ExplicitTree::Internal(c) => c.len() as u32,
        }
    }

    /// Follow a path; `None` if the path walks off the tree.
    pub fn descend(&self, path: &[u32]) -> Option<&ExplicitTree> {
        let mut cur = self;
        for &i in path {
            match cur {
                ExplicitTree::Leaf(_) => return None,
                ExplicitTree::Internal(c) => cur = c.get(i as usize)?,
            }
        }
        Some(cur)
    }

    /// Height: leaves have height 0.
    pub fn height(&self) -> u32 {
        match self {
            ExplicitTree::Leaf(_) => 0,
            ExplicitTree::Internal(c) => 1 + c.iter().map(|t| t.height()).max().unwrap_or(0),
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> u64 {
        match self {
            ExplicitTree::Leaf(_) => 1,
            ExplicitTree::Internal(c) => 1 + c.iter().map(|t| t.node_count()).sum::<u64>(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> u64 {
        match self {
            ExplicitTree::Leaf(_) => 1,
            ExplicitTree::Internal(c) => c.iter().map(|t| t.leaf_count()).sum(),
        }
    }

    /// True if every root-leaf path has length `n` and every internal node
    /// has exactly `d` children — i.e. the tree lies in `B(d,n)`/`M(d,n)`.
    pub fn is_uniform(&self, d: u32, n: u32) -> bool {
        match self {
            ExplicitTree::Leaf(_) => n == 0,
            ExplicitTree::Internal(c) => {
                n > 0 && c.len() as u32 == d && c.iter().all(|t| t.is_uniform(d, n - 1))
            }
        }
    }

    /// Materialize a [`TreeSource`] (up to `max_depth` levels, which keeps
    /// runaway sources from hanging tests) into an explicit tree.
    pub fn from_source<S: TreeSource>(source: &S, max_depth: u32) -> Self {
        fn go<S: TreeSource>(s: &S, path: &mut Vec<u32>, left: u32) -> ExplicitTree {
            let d = s.arity(path);
            if d == 0 {
                return ExplicitTree::Leaf(s.leaf_value(path));
            }
            assert!(left > 0, "source deeper than max_depth");
            let mut children = Vec::with_capacity(d as usize);
            for i in 0..d {
                path.push(i);
                children.push(go(s, path, left - 1));
                path.pop();
            }
            ExplicitTree::Internal(children)
        }
        go(source, &mut Vec::new(), max_depth)
    }

    /// Collect the paths of all leaves, left to right.
    pub fn leaf_paths(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        fn go(t: &ExplicitTree, path: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            match t {
                ExplicitTree::Leaf(_) => out.push(path.clone()),
                ExplicitTree::Internal(c) => {
                    for (i, ch) in c.iter().enumerate() {
                        path.push(i as u32);
                        go(ch, path, out);
                        path.pop();
                    }
                }
            }
        }
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

impl TreeSource for ExplicitTree {
    fn arity(&self, path: &[u32]) -> u32 {
        self.descend(path)
            .unwrap_or_else(|| panic!("path {path:?} off the tree"))
            .degree()
    }

    fn leaf_value(&self, path: &[u32]) -> Value {
        match self.descend(path) {
            Some(ExplicitTree::Leaf(v)) => *v,
            other => panic!("leaf_value at {path:?} found {other:?}"),
        }
    }

    fn height_hint(&self) -> Option<u32> {
        Some(self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExplicitTree {
        ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(0)]),
            ExplicitTree::leaf(1),
        ])
    }

    #[test]
    fn basic_shape_queries() {
        let t = sample();
        assert_eq!(t.height(), 2);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.degree(), 2);
        assert!(!t.is_uniform(2, 2));
    }

    #[test]
    fn descend_and_source_agree() {
        let t = sample();
        assert_eq!(t.arity(&[]), 2);
        assert_eq!(t.arity(&[0]), 2);
        assert_eq!(t.leaf_value(&[0, 1]), 0);
        assert_eq!(t.leaf_value(&[1]), 1);
        assert!(t.descend(&[1, 0]).is_none());
    }

    #[test]
    fn uniform_detection() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(1)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(1)]),
        ]);
        assert!(t.is_uniform(2, 2));
        assert!(!t.is_uniform(2, 1));
        assert!(!t.is_uniform(3, 2));
        assert!(ExplicitTree::leaf(5).is_uniform(7, 0));
    }

    #[test]
    fn from_source_roundtrip() {
        let t = sample();
        let copy = ExplicitTree::from_source(&&t, 10);
        assert_eq!(t, copy);
    }

    #[test]
    fn leaf_paths_are_in_left_to_right_order() {
        let t = sample();
        assert_eq!(t.leaf_paths(), vec![vec![0, 0], vec![0, 1], vec![1]]);
    }

    #[test]
    #[should_panic]
    fn empty_internal_rejected() {
        ExplicitTree::internal(vec![]);
    }
}
