//! [`LazyTree`]: an arena that materializes a [`TreeSource`] on demand.
//!
//! The arena stores pure structure (parent / children links, depth, child
//! index); algorithm state (determined values, finished flags, pruning)
//! lives in side vectors owned by the simulators, indexed by [`NodeId`].
//! Nodes are created only when their parent is expanded, so the memory
//! footprint tracks the region an algorithm actually explores — which is
//! what makes deep uniform trees affordable.

use crate::source::{NodeKind, TreeSource, Value};

/// Index of a node in a [`LazyTree`] arena.
pub type NodeId = u32;

/// Sentinel for "no node" (the root's parent).
pub const NONE: NodeId = u32::MAX;

/// One arena slot.  Children of a node are allocated contiguously, so a
/// node only needs the index of its first child and its arity.
#[derive(Debug, Clone)]
struct Slot {
    parent: NodeId,
    /// Index of this node among its siblings.
    child_index: u32,
    depth: u32,
    /// First child id, or [`NONE`] while unexpanded / for leaves.
    first_child: NodeId,
    /// Arity after expansion; meaningless before.
    arity: u32,
    state: SlotState,
    /// Leaf value, cached on first evaluation (or injected via
    /// [`LazyTree::set_leaf_value`] when computed externally).
    value: Option<Value>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Unexpanded,
    Internal,
    Leaf,
}

/// A lazily materialized game tree over a [`TreeSource`].
pub struct LazyTree<S> {
    source: S,
    slots: Vec<Slot>,
    expansions: u64,
    /// Reusable root-to-node path buffer for the internal
    /// expand/evaluate hot path, so a warmed tree queries its source
    /// without a per-call allocation.
    path_scratch: Vec<u32>,
}

impl<S: TreeSource> LazyTree<S> {
    /// Create a tree containing only the (unexpanded) root.
    pub fn new(source: S) -> Self {
        let mut t = Self {
            source,
            slots: Vec::with_capacity(1024),
            expansions: 0,
            path_scratch: Vec::new(),
        };
        t.slots.push(Slot {
            parent: NONE,
            child_index: 0,
            depth: 0,
            first_child: NONE,
            arity: 0,
            state: SlotState::Unexpanded,
            value: None,
        });
        t
    }

    /// The root node (always id 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of materialized nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when only the root exists and it is unexpanded.
    pub fn is_empty(&self) -> bool {
        self.slots.len() == 1 && !self.is_expanded(0)
    }

    /// Total number of `expand` operations performed so far.  This is the
    /// paper's unit of work in the node-expansion model.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// The underlying source.
    pub fn source(&self) -> &S {
        &self.source
    }

    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.slots[id as usize].parent;
        (p != NONE).then_some(p)
    }

    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.slots[id as usize].depth
    }

    /// This node's index among its siblings.
    #[inline]
    pub fn child_index(&self, id: NodeId) -> u32 {
        self.slots[id as usize].child_index
    }

    #[inline]
    pub fn is_expanded(&self, id: NodeId) -> bool {
        self.slots[id as usize].state != SlotState::Unexpanded
    }

    /// True if the node has been expanded and turned out to be a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.slots[id as usize].state == SlotState::Leaf
    }

    /// Arity of an expanded internal node (0 for leaves).
    #[inline]
    pub fn arity(&self, id: NodeId) -> u32 {
        debug_assert!(self.is_expanded(id));
        self.slots[id as usize].arity
    }

    /// Cached value of an evaluated leaf; panics if the leaf has not been
    /// evaluated yet.
    #[inline]
    pub fn leaf_value(&self, id: NodeId) -> Value {
        debug_assert!(self.is_leaf(id));
        self.slots[id as usize]
            .value
            .expect("leaf has not been evaluated")
    }

    /// Cached value of a leaf, if it has been evaluated.
    #[inline]
    pub fn leaf_value_cached(&self, id: NodeId) -> Option<Value> {
        self.slots[id as usize].value
    }

    /// The `i`-th child of an expanded internal node.
    #[inline]
    pub fn child(&self, id: NodeId, i: u32) -> NodeId {
        let s = &self.slots[id as usize];
        debug_assert!(s.state == SlotState::Internal && i < s.arity);
        s.first_child + i
    }

    /// Iterate over the children of an expanded internal node.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let s = &self.slots[id as usize];
        let (first, n) = match s.state {
            SlotState::Internal => (s.first_child, s.arity),
            _ => (0, 0),
        };
        (0..n).map(move |i| first + i)
    }

    /// Root-to-node path of `id` (child indices, root excluded).
    pub fn path_of(&self, id: NodeId) -> Vec<u32> {
        let mut p = Vec::with_capacity(self.depth(id) as usize);
        self.path_of_into(id, &mut p);
        p
    }

    /// [`LazyTree::path_of`] into a caller-owned buffer (cleared
    /// first), so tight loops can reuse one allocation across nodes.
    pub fn path_of_into(&self, id: NodeId, out: &mut Vec<u32>) {
        out.clear();
        let mut cur = id;
        while let Some(par) = self.parent(cur) {
            out.push(self.child_index(cur));
            cur = par;
        }
        out.reverse();
    }

    /// Expand `id` *structurally*: query the source's arity, create
    /// children for internal nodes, mark leaves — but do **not** fetch
    /// leaf values (the leaf-evaluation model charges for those
    /// separately; see [`LazyTree::evaluate_leaf`]).  Returns `true` if
    /// the node is a leaf.  Idempotent: re-expanding is a cheap no-op.
    pub fn expand_shallow(&mut self, id: NodeId) -> bool {
        match self.slots[id as usize].state {
            SlotState::Internal => return false,
            SlotState::Leaf => return true,
            SlotState::Unexpanded => {}
        }
        self.expansions += 1;
        let mut path = std::mem::take(&mut self.path_scratch);
        self.path_of_into(id, &mut path);
        let d = self.source.arity(&path);
        self.path_scratch = path;
        if d == 0 {
            self.slots[id as usize].state = SlotState::Leaf;
            true
        } else {
            let first = self.slots.len() as NodeId;
            let depth = self.slots[id as usize].depth + 1;
            for i in 0..d {
                self.slots.push(Slot {
                    parent: id,
                    child_index: i,
                    depth,
                    first_child: NONE,
                    arity: 0,
                    state: SlotState::Unexpanded,
                    value: None,
                });
            }
            let s = &mut self.slots[id as usize];
            s.state = SlotState::Internal;
            s.first_child = first;
            s.arity = d;
            false
        }
    }

    /// Expand `id` fully: like [`LazyTree::expand_shallow`] but a leaf is
    /// also evaluated, matching the node-expansion model's operation
    /// ("when applied to a node v it either evaluates v if v is a leaf
    /// or else produces the children of v").
    pub fn expand(&mut self, id: NodeId) -> NodeKind {
        if self.expand_shallow(id) {
            NodeKind::Leaf(self.evaluate_leaf(id))
        } else {
            NodeKind::Internal(self.slots[id as usize].arity)
        }
    }

    /// Install an externally computed expansion result for `id` without
    /// querying the source — the threaded node-expansion engine computes
    /// `NodeKind`s for a whole frontier in parallel against the source
    /// and then installs them here.  Counts as one expansion.  No-op if
    /// already expanded (the kinds must agree; checked in debug builds).
    pub fn install_expansion(&mut self, id: NodeId, kind: NodeKind) {
        if self.is_expanded(id) {
            debug_assert_eq!(
                matches!(kind, NodeKind::Leaf(_)),
                self.is_leaf(id),
                "conflicting expansion for node {id}"
            );
            if let NodeKind::Leaf(v) = kind {
                self.set_leaf_value(id, v);
            }
            return;
        }
        self.expansions += 1;
        match kind {
            NodeKind::Leaf(v) => {
                let s = &mut self.slots[id as usize];
                s.state = SlotState::Leaf;
                s.value = Some(v);
            }
            NodeKind::Internal(d) => {
                assert!(d > 0, "internal node must have children");
                let first = self.slots.len() as NodeId;
                let depth = self.slots[id as usize].depth + 1;
                for i in 0..d {
                    self.slots.push(Slot {
                        parent: id,
                        child_index: i,
                        depth,
                        first_child: NONE,
                        arity: 0,
                        state: SlotState::Unexpanded,
                        value: None,
                    });
                }
                let s = &mut self.slots[id as usize];
                s.state = SlotState::Internal;
                s.first_child = first;
                s.arity = d;
            }
        }
    }

    /// Evaluate the leaf at `id` (expanding it structurally if needed),
    /// caching the value.  Panics if the node turns out to be internal.
    pub fn evaluate_leaf(&mut self, id: NodeId) -> Value {
        assert!(
            self.expand_shallow(id),
            "evaluate_leaf called on internal node {id}"
        );
        if let Some(v) = self.slots[id as usize].value {
            return v;
        }
        let mut path = std::mem::take(&mut self.path_scratch);
        self.path_of_into(id, &mut path);
        let v = self.source.leaf_value(&path);
        self.path_scratch = path;
        self.slots[id as usize].value = Some(v);
        v
    }

    /// Inject an externally computed value for the leaf at `id` (used by
    /// the threaded engines, which evaluate frontier leaves in parallel
    /// against the source and then store the results here).
    pub fn set_leaf_value(&mut self, id: NodeId, value: Value) {
        assert!(
            self.expand_shallow(id),
            "set_leaf_value called on internal node {id}"
        );
        debug_assert!(
            self.slots[id as usize].value.is_none() || self.slots[id as usize].value == Some(value),
            "conflicting value for leaf {id}"
        );
        self.slots[id as usize].value = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;

    fn sample() -> ExplicitTree {
        ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(0)]),
            ExplicitTree::leaf(1),
        ])
    }

    #[test]
    fn root_starts_unexpanded() {
        let t = LazyTree::new(sample());
        assert_eq!(t.len(), 1);
        assert!(!t.is_expanded(t.root()));
        assert_eq!(t.expansions(), 0);
    }

    #[test]
    fn expansion_creates_children_contiguously() {
        let mut t = LazyTree::new(sample());
        assert_eq!(t.expand(0), NodeKind::Internal(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.child(0, 0), 1);
        assert_eq!(t.child(0, 1), 2);
        assert_eq!(t.depth(1), 1);
        assert_eq!(t.child_index(2), 1);
        assert_eq!(t.expansions(), 1);
    }

    #[test]
    fn expansion_is_idempotent() {
        let mut t = LazyTree::new(sample());
        t.expand(0);
        t.expand(0);
        assert_eq!(t.expansions(), 1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn leaf_expansion_records_value() {
        let mut t = LazyTree::new(sample());
        t.expand(0);
        assert_eq!(t.expand(2), NodeKind::Leaf(1));
        assert!(t.is_leaf(2));
        assert_eq!(t.leaf_value(2), 1);
    }

    #[test]
    fn path_of_roundtrips() {
        let mut t = LazyTree::new(sample());
        t.expand(0);
        t.expand(1);
        let inner_leaf = t.child(1, 1);
        assert_eq!(t.path_of(inner_leaf), vec![0, 1]);
        assert_eq!(t.path_of(t.root()), Vec::<u32>::new());
        assert_eq!(t.evaluate_leaf(inner_leaf), 0);
    }

    #[test]
    fn install_expansion_matches_source_driven_expansion() {
        let mut a = LazyTree::new(sample());
        let mut b = LazyTree::new(sample());
        a.expand(0);
        b.install_expansion(0, NodeKind::Internal(2));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.arity(0), b.arity(0));
        b.install_expansion(2, NodeKind::Leaf(1));
        assert!(b.is_leaf(2));
        assert_eq!(b.leaf_value(2), 1);
        assert_eq!(b.expansions(), 2);
        // Idempotent.
        b.install_expansion(2, NodeKind::Leaf(1));
        assert_eq!(b.expansions(), 2);
    }

    #[test]
    #[should_panic]
    fn evaluate_leaf_rejects_internal() {
        let mut t = LazyTree::new(sample());
        t.evaluate_leaf(0);
    }
}
