//! The [`TreeSource`] abstraction: an implicit description of a game tree.
//!
//! The paper's node-expansion model hands the algorithm only the root of
//! the input tree; everything else is discovered through *node expansion*.
//! A `TreeSource` is the oracle behind that operation: it answers, for the
//! node identified by a root-to-node path, how many children it has (zero
//! meaning the node is a leaf) and, for leaves, what the leaf's value is.

/// Leaf values.  NOR (Boolean) trees use `0` / `1`; MIN/MAX trees use the
/// full range.  Using one integer type everywhere keeps the simulators
/// monomorphic and fast.
pub type Value = i64;

/// Marker for a run abandoned through a cooperative cancellation flag.
///
/// Every cancellable evaluator in the workspace — the sequential
/// baselines here, the step simulators in `gt-sim`, and the threaded
/// engines in `gt-core` — reports abandonment with this one type, so a
/// serving layer can thread a single `AtomicBool` through any algorithm
/// and handle the outcome uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

/// What a node turned out to be when expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal node with the given number of children (`≥ 1`).
    Internal(u32),
    /// A leaf carrying a value.
    Leaf(Value),
}

/// An implicit game tree.
///
/// Nodes are addressed by their root-to-node path: the empty slice is the
/// root, `&[i]` is the root's `i`-th child (0-based), and so on.  A source
/// must be *consistent*: repeated queries for the same path must return
/// the same answer, and `arity` must only be interrogated for paths that
/// exist (each prefix step `p[i]` is less than the arity at that prefix).
///
/// Sources are required to be `Sync` so that frontier leaves can be
/// evaluated from multiple threads.
pub trait TreeSource: Sync {
    /// Number of children of the node at `path`; `0` means the node is a
    /// leaf.
    fn arity(&self, path: &[u32]) -> u32;

    /// Value of the leaf at `path`.  Only called when `arity(path) == 0`.
    fn leaf_value(&self, path: &[u32]) -> Value;

    /// Expand the node at `path` in one query.
    fn expand(&self, path: &[u32]) -> NodeKind {
        match self.arity(path) {
            0 => NodeKind::Leaf(self.leaf_value(path)),
            d => NodeKind::Internal(d),
        }
    }

    /// An upper bound on the height of the tree, if known.  Simulators use
    /// this only for pre-sizing buffers; `None` is always safe.
    fn height_hint(&self) -> Option<u32> {
        None
    }
}

impl<S: TreeSource + ?Sized> TreeSource for &S {
    fn arity(&self, path: &[u32]) -> u32 {
        (**self).arity(path)
    }
    fn leaf_value(&self, path: &[u32]) -> Value {
        (**self).leaf_value(path)
    }
    fn height_hint(&self) -> Option<u32> {
        (**self).height_hint()
    }
}

impl<S: TreeSource + ?Sized> TreeSource for Box<S> {
    fn arity(&self, path: &[u32]) -> u32 {
        (**self).arity(path)
    }
    fn leaf_value(&self, path: &[u32]) -> Value {
        (**self).leaf_value(path)
    }
    fn height_hint(&self) -> Option<u32> {
        (**self).height_hint()
    }
}

/// A source that presents another source with the children of every node
/// permuted by a deterministic, seeded pseudo-random permutation.
///
/// This is exactly the conceptual device of Section 6: *"R-Sequential
/// SOLVE is like Sequential SOLVE acting on a randomly permuted input
/// tree"*.  Running any deterministic algorithm on `Permuted<S>` realizes
/// its randomized counterpart (R-Sequential SOLVE, R-Parallel SOLVE,
/// R-Sequential α-β, R-Parallel α-β).
///
/// The permutation at each node is derived lazily from `(seed, path)`, so
/// the permuted tree is never materialized — matching the paper's remark
/// that "randomizations are performed only to the extent necessary".
pub struct Permuted<S> {
    inner: S,
    seed: u64,
}

impl<S: TreeSource> Permuted<S> {
    /// Wrap `inner`, permuting children with randomness derived from
    /// `seed`.
    pub fn new(inner: S, seed: u64) -> Self {
        Self { inner, seed }
    }

    /// Access the wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Translate a path in the permuted tree into the corresponding path
    /// in the underlying tree.
    fn translate(&self, path: &[u32]) -> Vec<u32> {
        let mut real = Vec::with_capacity(path.len());
        for (i, &c) in path.iter().enumerate() {
            let d = self.inner.arity(&real[..]);
            debug_assert!(c < d, "path step {i} out of range");
            real.push(permute_index(self.seed, &real, c, d));
        }
        real
    }
}

impl<S: TreeSource> TreeSource for Permuted<S> {
    fn arity(&self, path: &[u32]) -> u32 {
        let real = self.translate(path);
        self.inner.arity(&real)
    }

    fn leaf_value(&self, path: &[u32]) -> Value {
        let real = self.translate(path);
        self.inner.leaf_value(&real)
    }

    fn height_hint(&self) -> Option<u32> {
        self.inner.height_hint()
    }
}

/// Mix a 64-bit value (splitmix64 finalizer).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hash of `(seed, path)`.
#[inline]
pub fn path_hash(seed: u64, path: &[u32]) -> u64 {
    let mut h = mix64(seed ^ 0xa076_1d64_78bd_642f);
    for &c in path {
        h = mix64(h ^ u64::from(c).wrapping_mul(0xe703_7ed1_a0b4_28db));
    }
    h
}

/// The image of child index `c` (out of `d`) under the pseudo-random
/// permutation attached to the node at `path`.
///
/// The permutation is the one produced by the Fisher–Yates shuffle driven
/// by a splitmix64 stream seeded from `(seed, path)`; we recompute only
/// the column we need, which costs `O(d)` time and `O(d)` stack-free
/// scratch via a small local buffer.
fn permute_index(seed: u64, path: &[u32], c: u32, d: u32) -> u32 {
    debug_assert!(c < d);
    if d == 1 {
        return 0;
    }
    // For the small arities used in practice (d ≤ 64) recomputing the full
    // Fisher–Yates shuffle is cheap and keeps the permutation honest.
    let mut perm: Vec<u32> = (0..d).collect();
    let mut state = path_hash(seed, path);
    for i in (1..d as usize).rev() {
        state = mix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm[c as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn path_hash_depends_on_path() {
        assert_ne!(path_hash(1, &[0]), path_hash(1, &[1]));
        assert_ne!(path_hash(1, &[0, 1]), path_hash(1, &[1, 0]));
        assert_ne!(path_hash(1, &[]), path_hash(2, &[]));
    }

    #[test]
    fn permute_index_is_a_permutation() {
        for d in 1..10u32 {
            for seed in 0..5u64 {
                let mut seen = vec![false; d as usize];
                for c in 0..d {
                    let img = permute_index(seed, &[2, 0, 1], c, d);
                    assert!(img < d);
                    assert!(!seen[img as usize], "collision at d={d} seed={seed}");
                    seen[img as usize] = true;
                }
            }
        }
    }

    #[test]
    fn permuted_preserves_multiset_of_leaves() {
        // A 3-leaf tree; permuting children must preserve the multiset of
        // leaf values reachable.
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(10),
            ExplicitTree::leaf(20),
            ExplicitTree::leaf(30),
        ]);
        for seed in 0..20 {
            let p = Permuted::new(&t, seed);
            assert_eq!(p.arity(&[]), 3);
            let mut vals: Vec<i64> = (0..3).map(|i| p.leaf_value(&[i])).collect();
            vals.sort_unstable();
            assert_eq!(vals, vec![10, 20, 30]);
        }
    }

    #[test]
    fn permuted_identity_on_unary_chain() {
        let t = ExplicitTree::internal(vec![ExplicitTree::internal(vec![ExplicitTree::leaf(7)])]);
        let p = Permuted::new(&t, 99);
        assert_eq!(p.arity(&[]), 1);
        assert_eq!(p.arity(&[0]), 1);
        assert_eq!(p.leaf_value(&[0, 0]), 7);
    }

    #[test]
    fn permuted_actually_permutes_somewhere() {
        let t = ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(1)]);
        let mut saw_swap = false;
        for seed in 0..64 {
            let p = Permuted::new(&t, seed);
            if p.leaf_value(&[0]) == 1 {
                saw_swap = true;
            }
        }
        assert!(saw_swap, "no seed out of 64 swapped a binary node");
    }
}
