//! The [`crate::tree!`] macro: ergonomic literals for explicit trees.
//!
//! ```
//! use gt_tree::tree;
//! use gt_tree::minimax::minimax_value;
//!
//! // MAX( MIN(3, 9), MIN(7, 1) ) — brackets nest, integers are leaves.
//! let t = tree![[3, 9], [7, 1]];
//! assert_eq!(minimax_value(&t), 3);
//! ```

/// Build an [`crate::ExplicitTree`] literal: integers are leaves,
/// square brackets are internal nodes.  The outermost invocation is an
/// internal node (use `ExplicitTree::leaf` directly for a lone leaf).
#[macro_export]
macro_rules! tree {
    // Entry: a bracketed list of children becomes the root.
    ( $($child:tt),+ $(,)? ) => {
        $crate::ExplicitTree::Internal(vec![ $( $crate::tree!(@node $child) ),+ ])
    };
    // Internal node.
    (@node [ $($child:tt),+ $(,)? ]) => {
        $crate::ExplicitTree::Internal(vec![ $( $crate::tree!(@node $child) ),+ ])
    };
    // Parenthesized leaf expression.
    (@node ( $value:expr )) => {
        $crate::ExplicitTree::Leaf($value)
    };
    // Bare leaf token (literals, identifiers).
    (@node $value:tt) => {
        $crate::ExplicitTree::Leaf($value)
    };
}

#[cfg(test)]
mod tests {
    use crate::minimax::{minimax_value, nor_value};
    use crate::ExplicitTree;

    #[test]
    fn flat_tree() {
        let t = tree![1, 0, 1];
        assert_eq!(
            t,
            ExplicitTree::Internal(vec![
                ExplicitTree::Leaf(1),
                ExplicitTree::Leaf(0),
                ExplicitTree::Leaf(1),
            ])
        );
        assert_eq!(nor_value(&t), 0);
    }

    #[test]
    fn nested_tree() {
        let t = tree![[3, 9], [7, 1]];
        assert_eq!(minimax_value(&t), 3);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaf_count(), 4);
    }

    #[test]
    fn mixed_depths_and_trailing_commas() {
        let t = tree![[1, [0, 1]], 0,];
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn expressions_as_leaves_need_parens() {
        let x = 20;
        let t = tree![(x + 1), (x - 1)];
        assert_eq!(minimax_value(&t), 21);
        let t = tree![x, 5];
        assert_eq!(minimax_value(&t), 20);
    }
}
