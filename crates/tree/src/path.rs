//! Path utilities: lexicographic comparison and leaf indexing for
//! uniform trees.

use std::cmp::Ordering;

/// Lexicographic comparison of two root-to-node paths.  A proper prefix
/// precedes its extensions (the ancestor comes first in a pre-order
/// walk).
pub fn cmp_paths(a: &[u32], b: &[u32]) -> Ordering {
    a.cmp(b)
}

/// True if `a` is a (not necessarily proper) prefix of `b`, i.e. the node
/// at `a` is an ancestor of the node at `b`.
pub fn is_ancestor(a: &[u32], b: &[u32]) -> bool {
    a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// Index (0-based, left to right) of the leaf at `path` in the uniform
/// `d`-ary tree of height `path.len()`.
pub fn leaf_index(path: &[u32], d: u32) -> u64 {
    path.iter().fold(0u64, |acc, &c| acc * d as u64 + c as u64)
}

/// Path of the `index`-th leaf in the uniform `d`-ary tree of height `n`.
pub fn leaf_path(mut index: u64, d: u32, n: u32) -> Vec<u32> {
    let mut p = vec![0u32; n as usize];
    for i in (0..n as usize).rev() {
        p[i] = (index % d as u64) as u32;
        index /= d as u64;
    }
    assert_eq!(index, 0, "leaf index out of range");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_index_roundtrip() {
        for d in 2..5u32 {
            for n in 0..5u32 {
                let total = (d as u64).pow(n);
                for i in 0..total {
                    let p = leaf_path(i, d, n);
                    assert_eq!(p.len(), n as usize);
                    assert_eq!(leaf_index(&p, d), i);
                }
            }
        }
    }

    #[test]
    fn lexicographic_order_matches_left_to_right() {
        assert_eq!(cmp_paths(&[0, 1], &[1, 0]), Ordering::Less);
        assert_eq!(cmp_paths(&[0], &[0, 0]), Ordering::Less);
        assert_eq!(cmp_paths(&[2, 1], &[2, 1]), Ordering::Equal);
    }

    #[test]
    fn ancestor_test() {
        assert!(is_ancestor(&[], &[0, 1]));
        assert!(is_ancestor(&[0, 1], &[0, 1]));
        assert!(is_ancestor(&[0], &[0, 2, 1]));
        assert!(!is_ancestor(&[1], &[0, 2]));
        assert!(!is_ancestor(&[0, 1, 2], &[0, 1]));
    }

    #[test]
    #[should_panic]
    fn leaf_path_rejects_out_of_range() {
        leaf_path(8, 2, 3);
    }
}
