//! Proof trees and the Fact 1 / Fact 2 work lower bounds.
//!
//! A *proof tree* of a NOR tree `T` is a smallest subtree that verifies
//! the value of `T`: to certify a NOR node is `0` one child certified `1`
//! suffices; to certify it is `1` every child must be certified `0`.  Any
//! algorithm that evaluates `T` must have evaluated all leaves of some
//! proof tree, which yields Fact 1: on `B(d,n)` the total work is at
//! least `d^⌊n/2⌋`.  Fact 2 extends this to MIN/MAX trees via a pair of
//! proof trees sharing one leaf: `d^⌊n/2⌋ + d^⌈n/2⌉ − 1`.

use crate::minimax::minimax_value;
use crate::source::{TreeSource, Value};

/// Fact 1: lower bound `d^⌊n/2⌋` on the leaves any algorithm must
/// evaluate on an instance of `B(d,n)`.
pub fn fact1_lower_bound(d: u32, n: u32) -> u64 {
    (d as u64).pow(n / 2)
}

/// Fact 2: lower bound `d^⌊n/2⌋ + d^⌈n/2⌉ − 1` for `M(d,n)`.
pub fn fact2_lower_bound(d: u32, n: u32) -> u64 {
    (d as u64).pow(n / 2) + (d as u64).pow(n.div_ceil(2)) - 1
}

/// Number of leaves in a smallest proof tree certifying the value of the
/// NOR tree `source`.
pub fn nor_proof_size<S: TreeSource>(source: &S) -> u64 {
    fn go<S: TreeSource>(s: &S, path: &mut Vec<u32>) -> (Value, u64) {
        let d = s.arity(path);
        if d == 0 {
            return (s.leaf_value(path), 1);
        }
        let mut child_results = Vec::with_capacity(d as usize);
        for i in 0..d {
            path.push(i);
            child_results.push(go(s, path));
            path.pop();
        }
        if child_results.iter().any(|&(v, _)| v != 0) {
            // Node is 0: cheapest single child certified 1.
            let cost = child_results
                .iter()
                .filter(|&&(v, _)| v != 0)
                .map(|&(_, c)| c)
                .min()
                .unwrap();
            (0, cost)
        } else {
            // Node is 1: all children certified 0.
            (1, child_results.iter().map(|&(_, c)| c).sum())
        }
    }
    go(source, &mut Vec::new()).1
}

/// Number of leaves in smallest proof trees certifying `val(r) > a`
/// (first component) and `val(r) < b` (second component) for the MIN/MAX
/// tree `source`, where `a < val(r) < b`.
///
/// Per Fact 2's proof, an evaluation algorithm must exhibit both, and on
/// a uniform tree they overlap in exactly one leaf.
pub fn minmax_proof_sizes<S: TreeSource>(source: &S, a: Value, b: Value) -> (u64, u64) {
    let v = minimax_value(source);
    assert!(a < v && v < b, "need a < val(r) < b (got {a} < {v} < {b})");
    (
        proof_gt(source, &mut Vec::new(), a, true),
        proof_lt(source, &mut Vec::new(), b, true),
    )
}

/// Leaves needed to certify `val(node) > a`.
fn proof_gt<S: TreeSource>(s: &S, path: &mut Vec<u32>, a: Value, maximizing: bool) -> u64 {
    let d = s.arity(path);
    if d == 0 {
        debug_assert!(s.leaf_value(path) > a);
        return 1;
    }
    let mut costs = Vec::with_capacity(d as usize);
    for i in 0..d {
        path.push(i);
        let v = minimax_value_at(s, path, !maximizing);
        if v > a {
            costs.push(proof_gt(s, path, a, !maximizing));
        } else if !maximizing {
            // A MIN node needs *all* children > a; this child fails, so
            // record an impossible marker (caller guaranteed val > a, so
            // this cannot happen on the chosen branch).
            path.pop();
            unreachable!("MIN child ≤ a under a node with value > a");
        }
        path.pop();
    }
    if maximizing {
        // MAX > a: one child > a suffices.
        costs.into_iter().min().expect("some child exceeds a")
    } else {
        // MIN > a: all children must exceed a.
        costs.into_iter().sum()
    }
}

/// Leaves needed to certify `val(node) < b`.
fn proof_lt<S: TreeSource>(s: &S, path: &mut Vec<u32>, b: Value, maximizing: bool) -> u64 {
    let d = s.arity(path);
    if d == 0 {
        debug_assert!(s.leaf_value(path) < b);
        return 1;
    }
    let mut costs = Vec::with_capacity(d as usize);
    for i in 0..d {
        path.push(i);
        let v = minimax_value_at(s, path, !maximizing);
        if v < b {
            costs.push(proof_lt(s, path, b, !maximizing));
        } else if maximizing {
            path.pop();
            unreachable!("MAX child ≥ b under a node with value < b");
        }
        path.pop();
    }
    if maximizing {
        // MAX < b: all children below b.
        costs.into_iter().sum()
    } else {
        // MIN < b: one child below b suffices.
        costs.into_iter().min().expect("some child is below b")
    }
}

fn minimax_value_at<S: TreeSource>(s: &S, path: &mut Vec<u32>, maximizing: bool) -> Value {
    let d = s.arity(path);
    if d == 0 {
        return s.leaf_value(path);
    }
    let mut best = if maximizing { Value::MIN } else { Value::MAX };
    for i in 0..d {
        path.push(i);
        let v = minimax_value_at(s, path, !maximizing);
        path.pop();
        best = if maximizing { best.max(v) } else { best.min(v) };
    }
    best
}

/// Check Fact 1 directly on an instance: the smallest proof tree of any
/// `T ∈ B(d,n)` has at least `d^⌊n/2⌋` leaves.
pub fn verify_fact1<S: TreeSource>(source: &S, d: u32, n: u32) -> bool {
    nor_proof_size(source) >= fact1_lower_bound(d, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;
    use crate::gen::UniformSource;
    use crate::minimax::{nor_value, seq_solve};

    #[test]
    fn fact_bounds_arithmetic() {
        assert_eq!(fact1_lower_bound(2, 4), 4);
        assert_eq!(fact1_lower_bound(2, 5), 4);
        assert_eq!(fact1_lower_bound(3, 4), 9);
        assert_eq!(fact2_lower_bound(2, 4), 4 + 4 - 1);
        assert_eq!(fact2_lower_bound(2, 5), 4 + 8 - 1);
        assert_eq!(fact2_lower_bound(3, 3), 3 + 9 - 1);
    }

    #[test]
    fn proof_size_of_leaf_is_one() {
        assert_eq!(nor_proof_size(&ExplicitTree::leaf(0)), 1);
        assert_eq!(nor_proof_size(&ExplicitTree::leaf(1)), 1);
    }

    #[test]
    fn proof_size_zero_node_picks_cheapest_one_child() {
        // Root 0 because second child is 1 (cost 1); first child is a
        // 1-subtree costing 2.
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(0)]),
            ExplicitTree::leaf(1),
        ]);
        assert_eq!(nor_value(&t), 0);
        assert_eq!(nor_proof_size(&t), 1);
    }

    #[test]
    fn fact1_holds_on_uniform_instances() {
        for seed in 0..6 {
            for (d, n) in [(2u32, 6u32), (3, 4)] {
                let s = UniformSource::nor_iid(d, n, 0.5, seed);
                assert!(verify_fact1(&s, d, n), "d={d} n={n} seed={seed}");
                // And the sequential algorithm's work respects it too.
                assert!(seq_solve(&s, false).leaves_evaluated >= fact1_lower_bound(d, n));
            }
        }
    }

    #[test]
    fn uniform_proof_tree_alternates_degree_1_and_d() {
        // On B(d, n) the proof tree has degree 1 and d on alternate
        // levels, so its size is d^⌊n/2⌋ or d^⌈n/2⌉ depending on the root
        // value.
        for seed in 0..6 {
            let d = 2u32;
            let n = 6u32;
            let s = UniformSource::nor_iid(d, n, 0.5, seed);
            let size = nor_proof_size(&s);
            let v = nor_value(&s);
            // Root NOR = 1 certificate needs all children 0 → wide level
            // first; either way the two candidate sizes are:
            let small = (d as u64).pow(n / 2);
            let large = (d as u64).pow(n.div_ceil(2));
            assert!(
                size == small || size == large,
                "size {size} not in {{{small},{large}}} (root {v}, seed {seed})"
            );
        }
    }

    #[test]
    fn minmax_proofs_meet_fact2_on_uniform_trees() {
        for seed in 0..6 {
            let (d, n) = (2u32, 6u32);
            let s = UniformSource::minmax_iid(d, n, 0, 1_000_000, seed);
            let v = minimax_value(&s);
            let (gt, lt) = minmax_proof_sizes(&s, v - 1, v + 1);
            assert!(gt >= (d as u64).pow(n / 2), "gt proof too small");
            assert!(lt >= (d as u64).pow(n.div_ceil(2)), "lt proof too small");
            assert!(gt + lt > fact2_lower_bound(d, n));
        }
    }

    #[test]
    #[should_panic]
    fn minmax_proofs_reject_bad_bracket() {
        let t = ExplicitTree::leaf(5);
        minmax_proof_sizes(&t, 5, 10);
    }
}
