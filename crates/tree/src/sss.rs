//! SSS\* (Stockman 1979): best-first MIN/MAX tree search.
//!
//! The paper's related work (\[11\] Vornberger, *Parallel alpha-beta
//! versus parallel SSS\**) compares parallel α-β against parallel
//! SSS\*; we implement the sequential algorithm as a second baseline.
//! SSS\* maintains a priority list of `(node, status, merit)` triples
//! and repeatedly expands the highest-merit entry.  Its classical
//! **dominance property**: SSS\* never evaluates a leaf that α-β (on
//! the same tree, same ordering) skips — its leaf set is a subset of
//! α-β's — at the price of storing the OPEN list.
//!
//! This implementation follows Stockman's Γ-operator formulation, with
//! node identity = root path and leaf evaluation counted exactly like
//! the other baselines.

use crate::source::{TreeSource, Value};
use std::collections::BinaryHeap;

/// Solved/live status of an OPEN-list entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Merit is an upper bound; the node is still being explored.
    Live,
    /// Merit is the exact solved value of this node.
    Solved,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    merit: Value,
    /// Tie-break: deeper/leftmost first keeps the classical behaviour
    /// deterministic.
    path: Vec<u32>,
    status: Status,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on merit; ties: prefer Solved, then leftmost-deepest
        // path (lexicographically smaller paths first).
        self.merit
            .cmp(&other.merit)
            .then_with(|| {
                let a = matches!(self.status, Status::Solved);
                let b = matches!(other.status, Status::Solved);
                a.cmp(&b)
            })
            .then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Counters from an SSS\* run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SssStats {
    /// The exact root value.
    pub value: Value,
    /// Distinct leaves evaluated.
    pub leaves_evaluated: u64,
    /// Peak size of the OPEN list — the memory cost α-β avoids.
    pub peak_open: usize,
    /// Paths of evaluated leaves, in evaluation order.
    pub leaf_paths: Vec<Vec<u32>>,
}

/// Evaluate a MIN/MAX tree (root MAX) with SSS\*.
///
/// ```
/// use gt_tree::sss::sss_star;
/// use gt_tree::gen::UniformSource;
/// use gt_tree::minimax::seq_alphabeta;
///
/// let tree = UniformSource::minmax_iid(2, 6, 0, 1000, 5);
/// let sss = sss_star(&tree);
/// let ab = seq_alphabeta(&tree, false);
/// assert_eq!(sss.value, ab.value);
/// assert!(sss.leaves_evaluated <= ab.leaves_evaluated);  // dominance
/// ```
pub fn sss_star<S: TreeSource>(source: &S) -> SssStats {
    let mut open: BinaryHeap<Entry> = BinaryHeap::new();
    let mut stats = SssStats {
        value: 0,
        leaves_evaluated: 0,
        peak_open: 0,
        leaf_paths: Vec::new(),
    };
    open.push(Entry {
        merit: Value::MAX,
        path: Vec::new(),
        status: Status::Live,
    });
    loop {
        stats.peak_open = stats.peak_open.max(open.len());
        let top = open
            .pop()
            .expect("OPEN list never empties before root solves");
        if top.path.is_empty() && top.status == Status::Solved {
            stats.value = top.merit;
            return stats;
        }
        match top.status {
            Status::Live => {
                let d = source.arity(&top.path);
                if d == 0 {
                    // Evaluate the leaf; merit becomes min(h, value).
                    let v = source.leaf_value(&top.path);
                    stats.leaves_evaluated += 1;
                    stats.leaf_paths.push(top.path.clone());
                    open.push(Entry {
                        merit: top.merit.min(v),
                        path: top.path,
                        status: Status::Solved,
                    });
                } else if is_min(&top.path) {
                    // MIN node: all children belong to the same solution
                    // tree — explore them one at a time, leftmost first.
                    let mut p = top.path.clone();
                    p.push(0);
                    open.push(Entry {
                        merit: top.merit,
                        path: p,
                        status: Status::Live,
                    });
                } else {
                    // MAX node: each child starts an alternative
                    // solution tree — branch over all of them.
                    for i in 0..d {
                        let mut p = top.path.clone();
                        p.push(i);
                        open.push(Entry {
                            merit: top.merit,
                            path: p,
                            status: Status::Live,
                        });
                    }
                }
            }
            Status::Solved => {
                let parent_is_min = is_min(&top.path[..top.path.len() - 1]);
                let my_index = *top.path.last().unwrap();
                let parent: Vec<u32> = top.path[..top.path.len() - 1].to_vec();
                if parent_is_min {
                    // Solved child of a MIN node: the solution tree
                    // continues with the next sibling; when none remain
                    // the MIN node is solved at the accumulated merit.
                    let d = source.arity(&parent);
                    if my_index + 1 < d {
                        let mut p = parent;
                        p.push(my_index + 1);
                        open.push(Entry {
                            merit: top.merit,
                            path: p,
                            status: Status::Live,
                        });
                    } else {
                        open.push(Entry {
                            merit: top.merit,
                            path: parent,
                            status: Status::Solved,
                        });
                    }
                } else {
                    // Solved child of a MAX node: best-first guarantees
                    // no alternative child strategy can beat this merit,
                    // so the MAX node is solved; purge the now-dominated
                    // descendants.
                    purge_descendants(&mut open, &parent);
                    open.push(Entry {
                        merit: top.merit,
                        path: parent,
                        status: Status::Solved,
                    });
                }
            }
        }
    }
}

/// Counters from a parallel SSS\* run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SssParStats {
    /// The exact root value.
    pub value: Value,
    /// Total leaf evaluations.
    pub leaves_evaluated: u64,
    /// Lock-step batches executed (including pure-bookkeeping batches).
    pub steps: u64,
    /// Batches in which at least one leaf was evaluated — the running
    /// time in the leaf-evaluation model's accounting, where internal
    /// Γ-operations are free (exactly as the α-β pruning process's
    /// propagation and pruning steps are free).
    pub leaf_steps: u64,
    /// Largest batch actually processed.
    pub max_batch: u32,
    /// Peak OPEN list size.
    pub peak_open: usize,
}

/// Lock-step parallel SSS\* of width `k` (the subject of reference
/// \[11\], Vornberger): each step pops the `k` best OPEN entries and
/// applies the Γ-operator to all of them.
///
/// Entries popped later in a batch that fall inside a subtree purged by
/// an earlier (better-merit) member of the same batch are discarded, so
/// the batch behaves like a merit-ordered sequential burst — which
/// keeps the root value exact while allowing `k`-way leaf parallelism.
pub fn parallel_sss_star<S: TreeSource>(source: &S, k: u32) -> SssParStats {
    assert!(k >= 1);
    let mut open: BinaryHeap<Entry> = BinaryHeap::new();
    let mut stats = SssParStats {
        value: 0,
        leaves_evaluated: 0,
        steps: 0,
        leaf_steps: 0,
        max_batch: 0,
        peak_open: 0,
    };
    open.push(Entry {
        merit: Value::MAX,
        path: Vec::new(),
        status: Status::Live,
    });
    loop {
        stats.peak_open = stats.peak_open.max(open.len());
        stats.steps += 1;
        let leaves_before = stats.leaves_evaluated;
        let mut batch = Vec::new();
        for _ in 0..k {
            match open.pop() {
                Some(e) => batch.push(e),
                None => break,
            }
        }
        assert!(!batch.is_empty(), "OPEN exhausted before the root solved");
        stats.max_batch = stats.max_batch.max(batch.len() as u32);
        // Subtrees purged by earlier batch members this step.
        let mut purged_roots: Vec<Vec<u32>> = Vec::new();
        let mut finished: Option<Value> = None;
        for top in batch {
            if purged_roots
                .iter()
                .any(|r| top.path.len() > r.len() && top.path[..r.len()] == r[..])
            {
                continue; // would have been purged before its pop
            }
            // Solved entries at a MAX decision point (including the
            // root) may only act when no strictly better merit is
            // outstanding — acting early would purge strategies that
            // could still win.  Live expansions and MIN-side advances
            // are merit-safe speculation and may run early.
            let max_decision = top.status == Status::Solved
                && (top.path.is_empty() || !is_min(&top.path[..top.path.len() - 1]));
            if max_decision && open.peek().is_some_and(|e| e.merit > top.merit) {
                open.push(top); // defer to a later step
                continue;
            }
            if top.path.is_empty() && top.status == Status::Solved {
                finished = Some(top.merit);
                break;
            }
            match top.status {
                Status::Live => {
                    let d = source.arity(&top.path);
                    if d == 0 {
                        let v = source.leaf_value(&top.path);
                        stats.leaves_evaluated += 1;
                        open.push(Entry {
                            merit: top.merit.min(v),
                            path: top.path,
                            status: Status::Solved,
                        });
                    } else if is_min(&top.path) {
                        let mut p = top.path.clone();
                        p.push(0);
                        open.push(Entry {
                            merit: top.merit,
                            path: p,
                            status: Status::Live,
                        });
                    } else {
                        for i in 0..d {
                            let mut p = top.path.clone();
                            p.push(i);
                            open.push(Entry {
                                merit: top.merit,
                                path: p,
                                status: Status::Live,
                            });
                        }
                    }
                }
                Status::Solved => {
                    let parent_is_min = is_min(&top.path[..top.path.len() - 1]);
                    let my_index = *top.path.last().unwrap();
                    let parent: Vec<u32> = top.path[..top.path.len() - 1].to_vec();
                    if parent_is_min {
                        let d = source.arity(&parent);
                        if my_index + 1 < d {
                            let mut p = parent;
                            p.push(my_index + 1);
                            open.push(Entry {
                                merit: top.merit,
                                path: p,
                                status: Status::Live,
                            });
                        } else {
                            open.push(Entry {
                                merit: top.merit,
                                path: parent,
                                status: Status::Solved,
                            });
                        }
                    } else {
                        purge_descendants(&mut open, &parent);
                        purged_roots.push(parent.clone());
                        open.push(Entry {
                            merit: top.merit,
                            path: parent,
                            status: Status::Solved,
                        });
                    }
                }
            }
        }
        if stats.leaves_evaluated > leaves_before {
            stats.leaf_steps += 1;
        }
        if let Some(v) = finished {
            stats.value = v;
            return stats;
        }
    }
}

/// Is the node at `path` a MIN node?  Root (depth 0) is MAX.
fn is_min(path: &[u32]) -> bool {
    path.len() % 2 == 1
}

/// Remove every OPEN entry strictly below `ancestor`.
fn purge_descendants(open: &mut BinaryHeap<Entry>, ancestor: &[u32]) {
    let keep: Vec<Entry> = open
        .drain()
        .filter(|e| !(e.path.len() > ancestor.len() && e.path[..ancestor.len()] == *ancestor))
        .collect();
    open.extend(keep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UniformSource;
    use crate::minimax::{minimax_value, seq_alphabeta};
    use crate::ExplicitTree;

    #[test]
    fn solves_a_leaf() {
        let st = sss_star(&ExplicitTree::leaf(7));
        assert_eq!(st.value, 7);
        assert_eq!(st.leaves_evaluated, 1);
    }

    #[test]
    fn solves_small_trees_exactly() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(3), ExplicitTree::leaf(9)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(7), ExplicitTree::leaf(1)]),
        ]);
        assert_eq!(sss_star(&t).value, 3);
    }

    #[test]
    fn matches_minimax_on_random_uniform_trees() {
        for seed in 0..25 {
            for (d, n) in [(2u32, 6u32), (3, 4)] {
                let s = UniformSource::minmax_iid(d, n, -100, 100, seed);
                assert_eq!(
                    sss_star(&s).value,
                    minimax_value(&s),
                    "d={d} n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn matches_minimax_with_duplicate_leaves() {
        for seed in 0..15 {
            let s = UniformSource::minmax_iid(2, 6, 0, 3, seed);
            assert_eq!(sss_star(&s).value, minimax_value(&s), "seed {seed}");
        }
    }

    #[test]
    fn matches_minimax_on_irregular_trees() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(4),
            ExplicitTree::internal(vec![
                ExplicitTree::leaf(6),
                ExplicitTree::internal(vec![ExplicitTree::leaf(2), ExplicitTree::leaf(9)]),
                ExplicitTree::leaf(5),
            ]),
        ]);
        assert_eq!(sss_star(&t).value, minimax_value(&t));
    }

    #[test]
    fn dominance_over_alphabeta_on_uniform_trees() {
        // The classical SSS* property: never more leaf evaluations than
        // alpha-beta on the same instance.
        for seed in 0..20 {
            for (d, n) in [(2u32, 6u32), (3, 4)] {
                let s = UniformSource::minmax_iid(d, n, 0, 1 << 20, seed);
                let sss = sss_star(&s).leaves_evaluated;
                let ab = seq_alphabeta(&s, false).leaves_evaluated;
                assert!(
                    sss <= ab,
                    "SSS* {sss} > alpha-beta {ab} (d={d} n={n} seed={seed})"
                );
            }
        }
    }

    #[test]
    fn beats_alphabeta_on_worst_ordered_trees() {
        // Best-first search is immune to bad left-to-right ordering.
        let s = UniformSource::minmax_worst_ordered(2, 8);
        let sss = sss_star(&s).leaves_evaluated;
        let ab = seq_alphabeta(&s, false).leaves_evaluated;
        assert!(sss < ab, "SSS* {sss} should beat alpha-beta {ab}");
    }

    #[test]
    fn open_list_memory_is_reported() {
        let s = UniformSource::minmax_iid(3, 4, 0, 1000, 1);
        let st = sss_star(&s);
        assert!(st.peak_open > 1, "OPEN list should grow beyond the root");
        assert_eq!(st.leaf_paths.len() as u64, st.leaves_evaluated);
    }

    #[test]
    fn parallel_sss_is_exact_across_widths() {
        for seed in 0..12 {
            for (d, n) in [(2u32, 6u32), (3, 4)] {
                let s = UniformSource::minmax_iid(d, n, -100, 100, seed);
                let truth = minimax_value(&s);
                for k in [1u32, 2, 4, 8] {
                    let st = parallel_sss_star(&s, k);
                    assert_eq!(st.value, truth, "d={d} n={n} k={k} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn parallel_sss_width1_matches_sequential_leaf_count() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(2, 6, 0, 1000, seed);
            let seq = sss_star(&s);
            let par = parallel_sss_star(&s, 1);
            assert_eq!(par.value, seq.value);
            assert_eq!(par.leaves_evaluated, seq.leaves_evaluated, "seed {seed}");
        }
    }

    #[test]
    fn parallel_sss_steps_shrink_with_width() {
        let s = UniformSource::minmax_worst_ordered(2, 8);
        let mut prev = u64::MAX;
        for k in [1u32, 2, 4, 8] {
            let st = parallel_sss_star(&s, k);
            assert!(st.steps <= prev, "k={k} slower: {} vs {prev}", st.steps);
            prev = st.steps;
        }
    }

    #[test]
    fn parallel_sss_speculation_is_bounded() {
        // Extra leaves from speculative batch members stay within a
        // modest factor of the sequential best-first leaf count.
        for seed in 0..8 {
            let s = UniformSource::minmax_iid(2, 8, 0, 1 << 20, seed);
            let seq = sss_star(&s).leaves_evaluated;
            let par = parallel_sss_star(&s, 4).leaves_evaluated;
            assert!(par <= 4 * seq + 8, "k=4: {par} vs {seq} (seed {seed})");
        }
    }

    #[test]
    fn leaves_are_distinct() {
        let s = UniformSource::minmax_iid(2, 6, 0, 100, 2);
        let st = sss_star(&s);
        let mut paths = st.leaf_paths.clone();
        paths.sort();
        paths.dedup();
        assert_eq!(
            paths.len() as u64,
            st.leaves_evaluated,
            "a leaf was re-evaluated"
        );
    }
}
