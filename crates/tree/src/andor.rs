//! AND/OR trees and their NOR representation (Section 2).
//!
//! The paper works with NOR trees because *"an AND/OR tree is
//! equivalent to its NOR-tree representation up to complementation of
//! the value of the root and possibly the values on the leaves"*.  This
//! module makes that equivalence executable: convert an explicit AND/OR
//! tree (alternating OR/AND levels, OR at the root) into the NOR tree
//! the paper's algorithms run on, with the exact complementation
//! bookkeeping, and prove the value relation in tests.
//!
//! The transformation: a NOR node computes `¬(x₁ ∨ … ∨ x_d)`.  An OR
//! node is `NOR` with a complemented output; an AND node is
//! `x₁ ∧ … ∧ x_d = ¬(¬x₁ ∨ … ∨ ¬x_d)` — a NOR of complemented inputs.
//! Walking the tree top-down and tracking the pending complement on
//! each edge yields a NOR tree whose leaves are the original leaves,
//! complemented exactly where the parity bookkeeping demands.

use crate::explicit::ExplicitTree;

/// Node types of an AND/OR tree (root is OR, levels alternate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Maximum of Boolean children.
    Or,
    /// Minimum of Boolean children.
    And,
}

impl Gate {
    /// The gate at `depth` for an OR-rooted alternating tree.
    pub fn at_depth(depth: u32) -> Gate {
        if depth.is_multiple_of(2) {
            Gate::Or
        } else {
            Gate::And
        }
    }
}

/// Evaluate an explicit tree as an OR-rooted alternating AND/OR tree.
pub fn and_or_value(tree: &ExplicitTree) -> i64 {
    fn go(t: &ExplicitTree, depth: u32) -> i64 {
        match t {
            ExplicitTree::Leaf(v) => *v,
            ExplicitTree::Internal(children) => {
                let vals = children.iter().map(|c| go(c, depth + 1));
                match Gate::at_depth(depth) {
                    Gate::Or => vals.max().unwrap(),
                    Gate::And => vals.min().unwrap(),
                }
            }
        }
    }
    go(tree, 0)
}

/// Convert an OR-rooted AND/OR tree into its NOR representation.
///
/// Returns `(nor_tree, root_complemented)`: evaluating the returned
/// tree with NOR semantics yields the original AND/OR value if
/// `root_complemented` is false, and its complement otherwise (for an
/// OR root it is always complemented, per the paper).
pub fn to_nor(tree: &ExplicitTree) -> (ExplicitTree, bool) {
    // `complement` = the NOR value of this subtree equals the original
    // value complemented?  We build so each internal node is a NOR.
    //
    // OR  (no pending complement on inputs): ¬NOR(x…)            ⇒ output complemented
    // AND: ¬(¬x₁ ∨ …) = NOR(¬x…)                                 ⇒ inputs complemented
    //
    // Maintain `flip`: whether this subtree's ORIGINAL value must be
    // delivered complemented to the parent NOR input.  At a leaf, emit
    // the leaf value XOR flip.  At an internal node with gate g:
    //   g = Or : children flips = flip of... derive:
    // Let N(t) be NOR-evaluation of the built subtree; we want
    // N(built(t, flip)) = val(t) XOR flip.
    //   Leaf: built = Leaf(val XOR flip). ✓
    //   Or:  val = x₁ ∨ …; want val XOR flip.
    //        NOR(children) = ¬(c₁ ∨ …) where cᵢ = N(built(xᵢ, fᵢ)).
    //        Take fᵢ = 0: NOR = ¬val ⇒ need flip = 1 case: ¬val = val XOR 1 ✓;
    //        for flip = 0 we need val itself: take fᵢ = 1 instead:
    //        NOR(xᵢ XOR 1 …) = ¬(¬x₁ ∨ … ) = x₁ ∧ … — wrong gate.  So
    //        for an OR node the built NOR delivers ¬val, and we must
    //        push the residual complement DOWN through the parent: the
    //        child flip fᵢ = 0 and the node "produces" flip XOR 1.
    // The clean formulation: choose children flips so that the node's
    // delivered complement is forced, i.e. delivered(t) = flip_in is
    // achievable iff we pick children flips accordingly:
    //   Or  node: NOR(deliver(xᵢ, 0)) = ¬(∨ xᵢ) = ¬val ⇒ delivered
    //             complement = 1.  With children flips = 1:
    //             NOR(¬xᵢ) = ∧ xᵢ — an AND, not val.  So an OR node can
    //             only deliver ¬val: require flip == 1 and recurse
    //             children with flip 0.
    //   And node: NOR(deliver(xᵢ, 1)) = ¬(∨ ¬xᵢ) = ∧ xᵢ = val ⇒
    //             delivers val: require flip == 0, children flip 1.
    // Since OR delivers 1 and AND delivers 0, and levels alternate
    // OR/AND, the required flips alternate 1,0,1,0… down the tree —
    // exactly "complementation of the root and possibly the leaves".
    fn build(t: &ExplicitTree, depth: u32, flip: bool) -> ExplicitTree {
        match t {
            ExplicitTree::Leaf(v) => ExplicitTree::Leaf(if flip { 1 - *v } else { *v }),
            ExplicitTree::Internal(children) => {
                let gate = Gate::at_depth(depth);
                // OR delivers complement (flip must be true), AND
                // delivers the value (flip must be false); the
                // alternation guarantees this.
                debug_assert_eq!(flip, gate == Gate::Or, "alternation violated");
                let child_flip = gate == Gate::And;
                ExplicitTree::Internal(
                    children
                        .iter()
                        .map(|c| build(c, depth + 1, child_flip))
                        .collect(),
                )
            }
        }
    }
    match tree {
        ExplicitTree::Leaf(_) => (tree.clone(), false),
        _ => (build(tree, 0, true), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimax::nor_value;
    use proptest::prelude::*;

    fn boolean_tree() -> impl Strategy<Value = ExplicitTree> {
        let leaf = prop_oneof![Just(ExplicitTree::Leaf(0)), Just(ExplicitTree::Leaf(1))];
        leaf.prop_recursive(4, 48, 3, |inner| {
            prop::collection::vec(inner, 1..=3).prop_map(ExplicitTree::Internal)
        })
    }

    #[test]
    fn gates_alternate() {
        assert_eq!(Gate::at_depth(0), Gate::Or);
        assert_eq!(Gate::at_depth(1), Gate::And);
        assert_eq!(Gate::at_depth(2), Gate::Or);
    }

    #[test]
    fn simple_or_of_leaves() {
        let t = ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(1)]);
        assert_eq!(and_or_value(&t), 1);
        let (nor, complemented) = to_nor(&t);
        assert!(complemented);
        assert_eq!(1 - nor_value(&nor), 1);
    }

    #[test]
    fn or_of_ands() {
        // OR(AND(1,1), AND(1,0)) = 1.
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(1)]),
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(0)]),
        ]);
        assert_eq!(and_or_value(&t), 1);
        let (nor, complemented) = to_nor(&t);
        assert!(complemented);
        assert_eq!(1 - nor_value(&nor), 1);
        // Shape is preserved exactly.
        assert_eq!(nor.node_count(), t.node_count());
        assert_eq!(nor.height(), t.height());
    }

    #[test]
    fn leaf_passes_through() {
        let (nor, complemented) = to_nor(&ExplicitTree::leaf(1));
        assert!(!complemented);
        assert_eq!(nor_value(&nor), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn nor_representation_preserves_the_value(t in boolean_tree()) {
            // Section 2's equivalence, on arbitrary alternating trees.
            let expected = and_or_value(&t);
            let (nor, complemented) = to_nor(&t);
            let got = nor_value(&nor);
            let got = if complemented { 1 - got } else { got };
            prop_assert_eq!(got, expected);
            prop_assert_eq!(nor.node_count(), t.node_count());
        }
    }
}
