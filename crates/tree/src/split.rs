//! Subtree decomposition for scatter-gather evaluation: the tree-layer
//! half of **gt-split**.
//!
//! The paper's Section 7 machine evaluates *one* game tree across many
//! fixed processors: a master hands each worker a subtree, workers
//! report values back, and the master folds them through the NOR (or
//! MIN/MAX) recursion, pre-empting work that a reported value has made
//! irrelevant.  This module provides the three deterministic pieces
//! that protocol needs, with no I/O attached:
//!
//! * [`SubtreeSpec`] — a canonical, wire-serializable name for a
//!   subtree *plus the search window it must be evaluated under*: the
//!   generator spec, the path from the whole-tree root to the subtree
//!   root, and `(α, β)`.  Because every generator in this repo derives
//!   leaf values from `(seed, full path)`, any replica can regenerate
//!   its assigned subtree locally from the spec alone — the wire
//!   carries a few dozen bytes, never tree data.
//! * [`SubtreeView`] — a [`TreeSource`] adapter that prefixes the
//!   subtree root path onto every `arity`/`leaf_value` query, so the
//!   existing evaluators run unmodified on the subtree.
//! * [`split_children`] / [`Aggregator`] — the splitter that
//!   decomposes a spec into the root's child subtrees, and the fold
//!   that absorbs child values through the NOR / minimax recursion
//!   with monotone window narrowing and `α ≥ β` cutoff detection.
//!
//! The aggregator is deliberately a plain state machine (no threads,
//! no channels): gt-router drives one per split level and feeds it
//! values in *arrival* order.  Absorbing fail-soft child results out
//! of order is sound because the window only ever narrows — a child
//! evaluated under a stale (wider) window returns a value at least as
//! exact as required — and a fail-low result can never raise the
//! running maximum (symmetrically for MIN).  When children are
//! absorbed strictly eldest-first with the window narrowed between
//! them, the fold reproduces [`seq_alphabeta_windowed`] bit for bit;
//! [`sub_evaluate`] plus [`split_value_reference`] encode that
//! equivalence and the proptests in `tests/split_proptest.rs` hold it
//! over every generator family.

use crate::minimax::{seq_alphabeta_windowed, seq_solve, SeqStats};
use crate::source::{TreeSource, Value};
use crate::spec::GenSpec;

/// Render a subtree root path as dot-joined indices (`"0.2.1"`); the
/// whole-tree root is the empty string.
pub fn path_text(path: &[u32]) -> String {
    path.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Parse the output of [`path_text`].
pub fn parse_path(text: &str) -> Result<Vec<u32>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split('.')
        .map(|piece| {
            piece
                .parse::<u32>()
                .map_err(|e| format!("bad path segment {piece:?}: {e}"))
        })
        .collect()
}

/// A canonical, wire-serializable description of one unit of partial
/// evaluation: *this subtree of that generated tree, searched under
/// this window*.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeSpec {
    /// The whole-tree generator.
    pub spec: GenSpec,
    /// Path from the whole-tree root to the subtree root; empty means
    /// the whole tree.
    pub path: Vec<u32>,
    /// Lower search bound (exclusive interest region is `(alpha, beta)`).
    pub alpha: Value,
    /// Upper search bound.
    pub beta: Value,
}

impl SubtreeSpec {
    /// The whole tree under the full window.
    pub fn whole(spec: GenSpec) -> SubtreeSpec {
        SubtreeSpec {
            spec,
            path: Vec::new(),
            alpha: Value::MIN,
            beta: Value::MAX,
        }
    }

    /// Does the subtree root belong to the maximizing player?  The
    /// whole-tree root is MAX and levels alternate, so this is just
    /// depth parity.  (NOR trees are depth-uniform — a NOR subtree is
    /// a NOR tree — and ignore this.)
    pub fn maximizing(&self) -> bool {
        self.path.len().is_multiple_of(2)
    }

    /// Is the window the trivial full-width one?
    pub fn full_window(&self) -> bool {
        self.alpha == Value::MIN && self.beta == Value::MAX
    }

    /// Canonical text form, `spec#path#alpha..beta` — stable under
    /// parse/render round trips because [`GenSpec`] params are sorted
    /// and path segments are plain decimal.
    pub fn render(&self) -> String {
        let mut spec_text = self.spec.kind.clone();
        let mut sep = ':';
        for (k, v) in &self.spec.params {
            spec_text.push(sep);
            spec_text.push_str(k);
            spec_text.push('=');
            spec_text.push_str(v);
            sep = ',';
        }
        format!(
            "{spec_text}#{}#{}..{}",
            path_text(&self.path),
            self.alpha,
            self.beta
        )
    }

    /// Parse the output of [`render`](SubtreeSpec::render).
    pub fn parse(text: &str) -> Result<SubtreeSpec, String> {
        let mut pieces = text.splitn(3, '#');
        let spec_text = pieces.next().unwrap_or("");
        let path_piece = pieces
            .next()
            .ok_or_else(|| format!("subtree spec {text:?} missing '#path' section"))?;
        let window_piece = pieces
            .next()
            .ok_or_else(|| format!("subtree spec {text:?} missing '#window' section"))?;
        let (a, b) = window_piece
            .split_once("..")
            .ok_or_else(|| format!("bad window {window_piece:?} (want alpha..beta)"))?;
        let alpha: Value = a.parse().map_err(|e| format!("bad alpha {a:?}: {e}"))?;
        let beta: Value = b.parse().map_err(|e| format!("bad beta {b:?}: {e}"))?;
        if alpha >= beta {
            return Err(format!("empty window {alpha}..{beta}"));
        }
        Ok(SubtreeSpec {
            spec: GenSpec::parse(spec_text)?,
            path: parse_path(path_piece)?,
            alpha,
            beta,
        })
    }
}

/// A [`TreeSource`] that exposes the subtree rooted at `root` of an
/// underlying source, by prefixing `root` onto every query path.  The
/// generators derive leaf values from the full path, so the view
/// reproduces the subtree *exactly* — the property that lets a replica
/// regenerate its assignment from a [`SubtreeSpec`] alone.
pub struct SubtreeView<S> {
    inner: S,
    root: Vec<u32>,
}

impl<S: TreeSource> SubtreeView<S> {
    /// View `inner` from `root` down.
    pub fn new(inner: S, root: Vec<u32>) -> SubtreeView<S> {
        SubtreeView { inner, root }
    }

    fn full(&self, path: &[u32]) -> Vec<u32> {
        let mut p = Vec::with_capacity(self.root.len() + path.len());
        p.extend_from_slice(&self.root);
        p.extend_from_slice(path);
        p
    }
}

impl<S: TreeSource> TreeSource for SubtreeView<S> {
    fn arity(&self, path: &[u32]) -> u32 {
        self.inner.arity(&self.full(path))
    }

    fn leaf_value(&self, path: &[u32]) -> Value {
        self.inner.leaf_value(&self.full(path))
    }

    fn height_hint(&self) -> Option<u32> {
        self.inner
            .height_hint()
            .map(|h| h.saturating_sub(self.root.len() as u32))
    }
}

/// Decompose a subtree into its root's child subtrees.  Each child
/// inherits the parent's window verbatim (levels alternate player, but
/// the window is shared — narrowing is the aggregator's job as values
/// land).  Returns an empty vector when the subtree root is a leaf.
pub fn split_children<S: TreeSource>(source: &S, sub: &SubtreeSpec) -> Vec<SubtreeSpec> {
    let d = source.arity(&sub.path);
    (0..d)
        .map(|i| {
            let mut path = sub.path.clone();
            path.push(i);
            SubtreeSpec {
                spec: sub.spec.clone(),
                path,
                alpha: sub.alpha,
                beta: sub.beta,
            }
        })
        .collect()
}

/// How one node combines its children's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMode {
    /// NOR fold: node is `1` iff every child is `0`; a nonzero child
    /// settles the node at `0` immediately.
    Nor,
    /// Maximizing minimax node (raises `α`).
    Max,
    /// Minimizing minimax node (lowers `β`).
    Min,
}

/// The fold mode of the node at depth `path_len` of the tree `spec`
/// generates.
pub fn node_mode(spec: &GenSpec, path_len: usize) -> NodeMode {
    if !spec.is_minmax() {
        NodeMode::Nor
    } else if path_len.is_multiple_of(2) {
        NodeMode::Max
    } else {
        NodeMode::Min
    }
}

/// Folds child subtree values into one node value, narrowing the
/// window and detecting cutoffs — the aggregation half of the master's
/// loop in the Section 7 machine.
///
/// Drive it with [`absorb`](Aggregator::absorb) once per child value
/// (in any order; see the module docs for why out-of-order is sound),
/// or [`cut_short`](Aggregator::settled) the node as soon as `absorb`
/// reports a cutoff.  The `(α, β)` accessors expose the narrowed
/// window that *remaining* children should be searched under.
#[derive(Debug, Clone)]
pub struct Aggregator {
    mode: NodeMode,
    expected: u32,
    seen: u32,
    alpha: Value,
    beta: Value,
    best: Value,
    cut: bool,
}

impl Aggregator {
    /// A fold over `expected` children under the starting window.
    pub fn new(mode: NodeMode, expected: u32, alpha: Value, beta: Value) -> Aggregator {
        let best = match mode {
            NodeMode::Nor => 1,
            NodeMode::Max => Value::MIN,
            NodeMode::Min => Value::MAX,
        };
        Aggregator {
            mode,
            expected,
            seen: 0,
            alpha,
            beta,
            best,
            cut: false,
        }
    }

    /// Absorb one child value.  Returns `true` when this value fired a
    /// cutoff: the node is settled and every remaining child —
    /// dispatched or not — is now irrelevant.
    pub fn absorb(&mut self, value: Value) -> bool {
        if self.settled() {
            return false;
        }
        self.seen += 1;
        match self.mode {
            NodeMode::Nor => {
                if value != 0 {
                    self.best = 0;
                    self.cut = true;
                }
            }
            NodeMode::Max => {
                self.best = self.best.max(value);
                self.alpha = self.alpha.max(self.best);
                self.cut = self.alpha >= self.beta;
            }
            NodeMode::Min => {
                self.best = self.best.min(value);
                self.beta = self.beta.min(self.best);
                self.cut = self.alpha >= self.beta;
            }
        }
        self.cut
    }

    /// Has the node's value been decided — every child absorbed, or a
    /// cutoff fired?
    pub fn settled(&self) -> bool {
        self.cut || self.seen >= self.expected
    }

    /// Did a cutoff settle this node early?
    pub fn cut(&self) -> bool {
        self.cut
    }

    /// Children absorbed so far.
    pub fn seen(&self) -> u32 {
        self.seen
    }

    /// Children expected in total.
    pub fn expected(&self) -> u32 {
        self.expected
    }

    /// The window remaining children should be searched under.
    pub fn window(&self) -> (Value, Value) {
        (self.alpha, self.beta)
    }

    /// The node's value.  Exact once [`settled`](Aggregator::settled);
    /// before that, the running fold (a valid fail-soft bound).
    pub fn value(&self) -> Value {
        self.best
    }
}

/// Evaluate one [`SubtreeSpec`] sequentially: the reference for what a
/// replica computes when handed the spec over the wire.  NOR families
/// run `seq_solve` on the view (NOR subtrees are NOR trees; the window
/// is irrelevant to a boolean short-circuit fold); minimax families
/// run windowed α-β with the player chosen by depth parity.
pub fn sub_evaluate(sub: &SubtreeSpec) -> Result<SeqStats, String> {
    let source = sub.spec.build()?;
    let view = SubtreeView::new(source, sub.path.clone());
    if sub.spec.is_minmax() {
        Ok(seq_alphabeta_windowed(
            &view,
            false,
            sub.alpha,
            sub.beta,
            sub.maximizing(),
        ))
    } else {
        Ok(seq_solve(&view, false))
    }
}

/// Split → sub-evaluate → aggregate, strictly eldest-first with the
/// window narrowed between children, recursing while `depth > 0` (a
/// leaf or `depth == 0` falls back to [`sub_evaluate`]).  Returns the
/// value and the total leaves evaluated across all sub-evaluations —
/// the in-order scatter-gather reference that must agree with
/// [`seq_solve`] / [`seq_alphabeta_windowed`] on the whole tree.
pub fn split_value_reference(sub: &SubtreeSpec, depth: u32) -> Result<(Value, u64), String> {
    let source = sub.spec.build()?;
    split_value_inner(&source, sub, depth)
}

fn split_value_inner<S: TreeSource>(
    source: &S,
    sub: &SubtreeSpec,
    depth: u32,
) -> Result<(Value, u64), String> {
    let children = split_children(source, sub);
    if depth == 0 || children.is_empty() {
        let st = sub_evaluate(sub)?;
        return Ok((st.value, st.leaves_evaluated));
    }
    let mut agg = Aggregator::new(
        node_mode(&sub.spec, sub.path.len()),
        children.len() as u32,
        sub.alpha,
        sub.beta,
    );
    let mut leaves = 0;
    for child in children {
        if agg.settled() {
            break; // cutoff: remaining children are never evaluated
        }
        let (alpha, beta) = agg.window();
        let narrowed = SubtreeSpec {
            alpha,
            beta,
            ..child
        };
        let (v, l) = split_value_inner(source, &narrowed, depth - 1)?;
        leaves += l;
        agg.absorb(v);
    }
    Ok((agg.value(), leaves))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimax::{seq_alphabeta, seq_solve};

    fn spec(text: &str) -> GenSpec {
        GenSpec::parse(text).unwrap()
    }

    #[test]
    fn path_text_round_trips() {
        for p in [vec![], vec![0], vec![3, 0, 12]] {
            assert_eq!(parse_path(&path_text(&p)).unwrap(), p);
        }
        assert!(parse_path("0..1").is_err());
        assert!(parse_path("a").is_err());
    }

    #[test]
    fn subtree_spec_round_trips() {
        let s = SubtreeSpec {
            spec: spec("minmax:d=3,n=6,seed=9"),
            path: vec![2, 0, 1],
            alpha: -17,
            beta: 404,
        };
        let text = s.render();
        assert_eq!(SubtreeSpec::parse(&text).unwrap(), s);
        let whole = SubtreeSpec::whole(spec("worst:d=2,n=8"));
        assert_eq!(SubtreeSpec::parse(&whole.render()).unwrap(), whole);
        assert!(whole.full_window());
        assert!(whole.maximizing());
        assert!(
            SubtreeSpec::parse("worst:n=4#0#5..5").is_err(),
            "empty window"
        );
        assert!(SubtreeSpec::parse("worst:n=4#0").is_err(), "no window");
    }

    #[test]
    fn view_reproduces_the_subtree_exactly() {
        let g = spec("minmax:d=3,n=5,seed=7");
        let whole = g.build().unwrap();
        for path in [vec![0], vec![2, 1], vec![1, 2, 0]] {
            let view = SubtreeView::new(g.build().unwrap(), path.clone());
            // Every leaf under the view matches the whole tree's leaf at
            // the prefixed path; spot-check the leftmost and rightmost.
            let depth_left = 5 - path.len();
            let left: Vec<u32> = vec![0; depth_left];
            let mut full_left = path.clone();
            full_left.extend_from_slice(&left);
            assert_eq!(view.leaf_value(&left), whole.leaf_value(&full_left));
            let right: Vec<u32> = vec![2; depth_left];
            let mut full_right = path.clone();
            full_right.extend_from_slice(&right);
            assert_eq!(view.leaf_value(&right), whole.leaf_value(&full_right));
            assert_eq!(view.height_hint(), Some(depth_left as u32));
        }
    }

    #[test]
    fn split_children_inherit_the_window() {
        let sub = SubtreeSpec {
            spec: spec("minmax:d=3,n=4"),
            path: Vec::new(),
            alpha: 10,
            beta: 90,
        };
        let source = sub.spec.build().unwrap();
        let kids = split_children(&source, &sub);
        assert_eq!(kids.len(), 3);
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(k.path, vec![i as u32]);
            assert_eq!((k.alpha, k.beta), (10, 90));
            assert!(!k.maximizing(), "depth-1 nodes are MIN");
        }
    }

    #[test]
    fn nor_aggregator_short_circuits() {
        let mut agg = Aggregator::new(NodeMode::Nor, 3, Value::MIN, Value::MAX);
        assert!(!agg.absorb(0));
        assert!(!agg.settled());
        assert!(agg.absorb(1), "nonzero child fires the cutoff");
        assert!(agg.settled() && agg.cut());
        assert_eq!(agg.value(), 0);
        // All-zero children settle at 1 with no cutoff.
        let mut agg = Aggregator::new(NodeMode::Nor, 2, Value::MIN, Value::MAX);
        agg.absorb(0);
        agg.absorb(0);
        assert!(agg.settled() && !agg.cut());
        assert_eq!(agg.value(), 1);
    }

    #[test]
    fn minimax_aggregator_narrows_and_cuts() {
        // MAX node with β = 10: a child ≥ 10 fires the cutoff.
        let mut agg = Aggregator::new(NodeMode::Max, 3, Value::MIN, 10);
        assert!(!agg.absorb(4));
        assert_eq!(agg.window(), (4, 10), "α rises to the running best");
        assert!(agg.absorb(12));
        assert!(agg.cut());
        assert_eq!(agg.value(), 12, "fail-soft: the bound is reported");
        // MIN node mirrors with β.
        let mut agg = Aggregator::new(NodeMode::Min, 3, 5, Value::MAX);
        assert!(!agg.absorb(9));
        assert_eq!(agg.window(), (5, 9));
        assert!(agg.absorb(3), "value ≤ α fires at a MIN node");
        assert_eq!(agg.value(), 3);
    }

    #[test]
    fn absorbing_after_settle_is_inert() {
        let mut agg = Aggregator::new(NodeMode::Nor, 4, Value::MIN, Value::MAX);
        agg.absorb(1);
        let v = agg.value();
        assert!(!agg.absorb(1), "late (discarded) arrivals do not re-fire");
        assert_eq!(agg.value(), v);
        assert_eq!(agg.seen(), 1);
    }

    #[test]
    fn one_level_split_matches_sequential_everywhere() {
        for text in [
            "nor:d=3,n=5,seed=11",
            "crit:d=2,n=8,seed=3",
            "worst:d=2,n=6",
            "allones:d=2,n=5",
        ] {
            let sub = SubtreeSpec::whole(spec(text));
            let (v, _) = split_value_reference(&sub, 1).unwrap();
            let whole = spec(text).build().unwrap();
            assert_eq!(v, seq_solve(&whole, false).value, "{text}");
        }
        for text in [
            "minmax:d=3,n=4,seed=5",
            "minmax-best:d=2,n=6,value=42",
            "minmax-worst:d=2,n=6",
            "minmax-corr:d=3,n=4,seed=2",
        ] {
            let sub = SubtreeSpec::whole(spec(text));
            let (v, _) = split_value_reference(&sub, 1).unwrap();
            let whole = spec(text).build().unwrap();
            assert_eq!(v, seq_alphabeta(&whole, false).value, "{text}");
        }
    }

    #[test]
    fn narrowed_sibling_windows_do_less_work() {
        // Best-ordered tree: the eldest subtree already carries the
        // exact value, so siblings searched under the narrowed window
        // collapse almost immediately — strictly fewer leaves than the
        // naive split that hands every child the full window.
        let g = spec("minmax-best:d=2,n=10,value=7");
        let whole = SubtreeSpec::whole(g.clone());
        let (v, narrowed_leaves) = split_value_reference(&whole, 1).unwrap();
        assert_eq!(v, 7);
        let source = g.build().unwrap();
        let naive_leaves: u64 = split_children(&source, &whole)
            .iter()
            .map(|c| sub_evaluate(c).unwrap().leaves_evaluated)
            .sum();
        assert!(
            narrowed_leaves < naive_leaves,
            "windowed {narrowed_leaves} vs naive {naive_leaves}"
        );
    }
}
