//! The skeleton `H_T` of Section 3.
//!
//! For a NOR tree `T`, let `L(T)` be the leaves Sequential SOLVE
//! evaluates.  The skeleton `H_T` is obtained from `T` by deleting every
//! node that is not an ancestor of a leaf in `L(T)`.  Proposition 2 (and
//! its α-β counterpart, Proposition 5) states `P_w(T) ≤ P_w(H_T)` — the
//! parallel algorithm can only get *slower* on the skeleton — which is
//! the reduction that lets the whole analysis work on `H_T`.
//!
//! [`skeleton_of`] builds `H_T` as an [`ExplicitTree`] from the evaluated
//! leaf set; [`nor_skeleton`] and [`alphabeta_skeleton`] run the
//! corresponding sequential algorithm first.

use crate::explicit::ExplicitTree;
use crate::minimax::{seq_alphabeta, seq_solve};
use crate::source::TreeSource;

/// Build the subtree of `source` spanned by the ancestors of the given
/// leaf paths.  Children keep their original left-to-right order (indices
/// are compacted).  Panics if `leaf_paths` is empty or contains a path
/// that is not a leaf of `source`.
pub fn skeleton_of<S: TreeSource>(source: &S, leaf_paths: &[Vec<u32>]) -> ExplicitTree {
    assert!(!leaf_paths.is_empty(), "skeleton of an empty leaf set");
    let mut sorted: Vec<&Vec<u32>> = leaf_paths.iter().collect();
    sorted.sort();
    sorted.dedup();
    build(source, &mut Vec::new(), &sorted)
}

fn build<S: TreeSource>(source: &S, prefix: &mut Vec<u32>, paths: &[&Vec<u32>]) -> ExplicitTree {
    let depth = prefix.len();
    // All paths share `prefix`.  If the first path ends here, this node is
    // an evaluated leaf (and, being a leaf, it must be the only path).
    if paths[0].len() == depth {
        assert_eq!(
            paths.len(),
            1,
            "leaf path {:?} is a prefix of another evaluated leaf",
            paths[0]
        );
        assert_eq!(source.arity(prefix), 0, "path {prefix:?} is not a leaf");
        return ExplicitTree::Leaf(source.leaf_value(prefix));
    }
    // Group by the child index at `depth`; paths are sorted, so groups are
    // contiguous and in left-to-right order.
    let mut children = Vec::new();
    let mut i = 0;
    while i < paths.len() {
        let c = paths[i][depth];
        let mut j = i + 1;
        while j < paths.len() && paths[j][depth] == c {
            j += 1;
        }
        prefix.push(c);
        children.push(build(source, prefix, &paths[i..j]));
        prefix.pop();
        i = j;
    }
    ExplicitTree::Internal(children)
}

/// Run Sequential SOLVE on `source` and return its skeleton `H_T`.
pub fn nor_skeleton<S: TreeSource>(source: &S) -> ExplicitTree {
    let stats = seq_solve(source, true);
    skeleton_of(source, &stats.leaf_paths.expect("leaves recorded"))
}

/// Run Sequential α-β on `source` and return its skeleton `H̃_T`.
pub fn alphabeta_skeleton<S: TreeSource>(source: &S) -> ExplicitTree {
    let stats = seq_alphabeta(source, true);
    skeleton_of(source, &stats.leaf_paths.expect("leaves recorded"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UniformSource;
    use crate::minimax::{nor_value, seq_solve};

    #[test]
    fn skeleton_of_single_leaf() {
        let t = ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(0)]);
        let h = skeleton_of(&t, &[vec![0]]);
        assert_eq!(h, ExplicitTree::internal(vec![ExplicitTree::leaf(1)]));
    }

    #[test]
    fn skeleton_preserves_order_and_values() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(10), ExplicitTree::leaf(20)]),
            ExplicitTree::leaf(30),
            ExplicitTree::leaf(40),
        ]);
        let h = skeleton_of(&t, &[vec![0, 1], vec![2]]);
        assert_eq!(
            h,
            ExplicitTree::internal(vec![
                ExplicitTree::internal(vec![ExplicitTree::leaf(20)]),
                ExplicitTree::leaf(40),
            ])
        );
    }

    #[test]
    fn nor_skeleton_has_same_value_and_leaf_count() {
        for seed in 0..8 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let st = seq_solve(&s, false);
            let h = nor_skeleton(&s);
            assert_eq!(h.leaf_count(), st.leaves_evaluated, "seed {seed}");
            // Sequential SOLVE on H_T evaluates all its leaves and yields
            // the same value.
            let sh = seq_solve(&h, false);
            assert_eq!(sh.value, st.value);
            assert_eq!(sh.leaves_evaluated, h.leaf_count());
            assert_eq!(nor_value(&h), st.value);
        }
    }

    #[test]
    fn nor_skeleton_left_siblings_are_complete() {
        // The paper notes nodes of H_T keep the same left-sibling set: the
        // skeleton never skips a left sibling.  Verify: at every internal
        // node of H_T built from Sequential SOLVE, the kept children are a
        // prefix-closed selection only when the parent's value forces it —
        // concretely, the kept child indices in T must form a contiguous
        // prefix 0..k.
        for seed in 0..8 {
            let s = UniformSource::nor_iid(3, 5, 0.4, seed);
            let stats = seq_solve(&s, true);
            let mut paths = stats.leaf_paths.unwrap();
            paths.sort();
            // For every evaluated leaf path p and every ancestor position
            // i, all sibling indices 0..p[i] must appear as ancestors of
            // some evaluated leaf.
            for p in &paths {
                for i in 0..p.len() {
                    for c in 0..p[i] {
                        let mut want = p[..i].to_vec();
                        want.push(c);
                        assert!(
                            paths
                                .iter()
                                .any(|q| q.len() > i && q[..i] == want[..i] && q[i] == c),
                            "missing left sibling {want:?} (seed {seed})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alphabeta_skeleton_value_preserved() {
        for seed in 0..8 {
            let s = UniformSource::minmax_iid(2, 6, 0, 1000, seed);
            let st = seq_alphabeta(&s, false);
            let h = alphabeta_skeleton(&s);
            let sh = seq_alphabeta(&h, false);
            assert_eq!(sh.value, st.value, "seed {seed}");
            assert_eq!(h.leaf_count(), st.leaves_evaluated);
        }
    }

    #[test]
    #[should_panic]
    fn empty_leaf_set_rejected() {
        let t = ExplicitTree::leaf(1);
        skeleton_of(&t, &[]);
    }
}
