//! Workload generators: the tree instances the experiments run on.
//!
//! The paper analyzes uniform `d`-ary trees of height `n` (`B(d,n)` for
//! NOR/AND-OR trees, `M(d,n)` for MIN/MAX trees).  This module provides:
//!
//! * [`UniformSource`] — `B(d,n)` / `M(d,n)` with pluggable leaf values;
//! * [`IidBernoulli`] — i.i.d. Boolean leaves (Section 6's i.i.d. model),
//!   including the Althöfer-critical bias `p = (√5−1)/2`;
//! * [`WorstCaseNor`] — instances on which Sequential SOLVE must evaluate
//!   *every* leaf (Section 6: "any deterministic algorithm would have to
//!   evaluate all the leaves in the worst case");
//! * [`ConstLeaf`] — all-equal MIN/MAX leaves: with the `α ≥ β` pruning
//!   rule these meet the Knuth–Moore minimum `d^⌊n/2⌋ + d^⌈n/2⌉ − 1`
//!   exactly (Fact 2 / experiment E10);
//! * [`WorstOrderedMinMax`] — MIN/MAX instances whose children are ordered
//!   worst-to-best at every node, defeating all α-β cutoffs;
//! * [`IidMinMax`] — i.i.d. integer leaves for MIN/MAX trees;
//! * [`NearUniformSource`] — the "close to uniform" trees of Corollary 2
//!   (arity in `[⌈αd⌉, d]`, leaf depth in `[⌈βn⌉, n]`).

use crate::source::{path_hash, TreeSource, Value};

/// The golden-ratio leaf bias `p = (√5 − 1)/2 ≈ 0.618` from Althöfer's
/// i.i.d. analysis cited in Section 6.  At this bias a uniform binary
/// NOR tree is "critical": the root value does not converge to a
/// constant as the height grows.  (It is the complement of the d = 2
/// fixpoint returned by [`critical_bias`].)
pub const CRITICAL_BIAS: f64 = 0.618_033_988_749_894_9;

/// The level-invariant ("critical") leaf bias for uniform `d`-ary NOR
/// trees: the fixpoint of `x = (1 − x)^d`, so that every level of the
/// tree has the same probability of being 1 and the root value stays
/// non-degenerate at any height.  For `d = 2` this is
/// `(3 − √5)/2 ≈ 0.382`.
pub fn critical_bias(d: u32) -> f64 {
    assert!(d >= 1);
    // g(x) = (1-x)^d - x is strictly decreasing on [0,1] with g(0) > 0,
    // g(1) < 0: bisect.
    let g = |x: f64| (1.0 - x).powi(d as i32) - x;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Pluggable leaf-value assignment for [`UniformSource`].
pub trait LeafValues: Sync {
    /// The value of the leaf at `path` (the full root-to-leaf path).
    fn value(&self, path: &[u32]) -> Value;
}

impl<F: Fn(&[u32]) -> Value + Sync> LeafValues for F {
    fn value(&self, path: &[u32]) -> Value {
        self(path)
    }
}

/// A uniform `d`-ary tree of height `n` (`B(d,n)` or `M(d,n)` depending
/// on how the leaves are interpreted).
pub struct UniformSource<L> {
    degree: u32,
    height: u32,
    leaves: L,
}

impl<L: LeafValues> UniformSource<L> {
    /// A uniform tree with the given leaf-value assignment.
    pub fn new(degree: u32, height: u32, leaves: L) -> Self {
        assert!(degree >= 1);
        Self {
            degree,
            height,
            leaves,
        }
    }

    /// Branching factor `d`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Height `n`.
    pub fn height(&self) -> u32 {
        self.height
    }
}

impl UniformSource<IidBernoulli> {
    /// `B(d,n)` with i.i.d. Bernoulli(`p`) leaves.
    pub fn nor_iid(degree: u32, height: u32, p: f64, seed: u64) -> Self {
        Self::new(degree, height, IidBernoulli::new(p, seed))
    }

    /// `B(d,n)` at the critical bias `p = (√5−1)/2`.
    pub fn nor_critical(degree: u32, height: u32, seed: u64) -> Self {
        Self::nor_iid(degree, height, CRITICAL_BIAS, seed)
    }
}

impl UniformSource<WorstCaseNor> {
    /// `B(d,n)` on which Sequential SOLVE evaluates all `d^n` leaves.
    pub fn nor_worst_case(degree: u32, height: u32) -> Self {
        Self::new(degree, height, WorstCaseNor::new(degree))
    }
}

impl UniformSource<IidMinMax> {
    /// `M(d,n)` with i.i.d. integer leaves in `[lo, hi]`.
    pub fn minmax_iid(degree: u32, height: u32, lo: Value, hi: Value, seed: u64) -> Self {
        Self::new(degree, height, IidMinMax::new(lo, hi, seed))
    }
}

impl UniformSource<ConstLeaf> {
    /// `M(d,n)` with all-equal leaves — the best-ordered (minimal-work)
    /// instance under the `α ≥ β` pruning rule.
    pub fn minmax_best_ordered(degree: u32, height: u32, value: Value) -> Self {
        Self::new(degree, height, ConstLeaf(value))
    }
}

impl UniformSource<WorstOrderedMinMax> {
    /// `M(d,n)` whose children are ordered worst-to-best everywhere, so
    /// that sequential α-β evaluates all `d^n` leaves.
    pub fn minmax_worst_ordered(degree: u32, height: u32) -> Self {
        Self::new(degree, height, WorstOrderedMinMax::new(degree, height))
    }
}

impl<L: LeafValues> TreeSource for UniformSource<L> {
    fn arity(&self, path: &[u32]) -> u32 {
        if (path.len() as u32) < self.height {
            self.degree
        } else {
            0
        }
    }

    fn leaf_value(&self, path: &[u32]) -> Value {
        debug_assert_eq!(path.len() as u32, self.height);
        self.leaves.value(path)
    }

    fn height_hint(&self) -> Option<u32> {
        Some(self.height)
    }
}

/// I.i.d. Bernoulli leaf values: leaf is `1` with probability `p`,
/// deterministically derived from `(seed, path)` so the instance is
/// reproducible and never materialized.
pub struct IidBernoulli {
    /// Probability threshold scaled to `u64` range.
    threshold: u64,
    seed: u64,
}

impl IidBernoulli {
    /// Bernoulli(`p`) leaves seeded by `seed`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * (u64::MAX as f64)) as u64
        };
        Self { threshold, seed }
    }
}

impl LeafValues for IidBernoulli {
    fn value(&self, path: &[u32]) -> Value {
        Value::from(path_hash(self.seed, path) <= self.threshold)
    }
}

/// The worst-case NOR instance: leaf values chosen so the left-to-right
/// sequential algorithm can never stop early and evaluates all `d^n`
/// leaves.
///
/// Construction (propagating a *target value* down the tree): a node with
/// target `1` gives all children target `0`; a node with target `0` gives
/// its last child target `1` and all the others target `0`.  A NOR node
/// whose children are all `0` has value `1` but forces the sequential
/// algorithm to look at every child; a node with a single `1` in last
/// position has value `0` and again no early exit is possible.
pub struct WorstCaseNor {
    degree: u32,
    root_target: Value,
}

impl WorstCaseNor {
    /// Worst-case leaves for a `d`-ary tree, root value `1`.
    pub fn new(degree: u32) -> Self {
        Self {
            degree,
            root_target: 1,
        }
    }

    /// Worst-case leaves with a chosen root value (`0` or `1`).
    pub fn with_root_target(degree: u32, root_target: Value) -> Self {
        assert!(root_target == 0 || root_target == 1);
        Self {
            degree,
            root_target,
        }
    }

    /// The target value at `path` — for a leaf path this is its value.
    pub fn target(&self, path: &[u32]) -> Value {
        let mut t = self.root_target;
        for &i in path {
            t = if t == 1 {
                0
            } else {
                Value::from(i == self.degree - 1)
            };
        }
        t
    }
}

impl LeafValues for WorstCaseNor {
    fn value(&self, path: &[u32]) -> Value {
        self.target(path)
    }
}

/// All leaves equal.  Under the `α ≥ β` pruning rule this is the
/// best-ordered MIN/MAX instance: sequential α-β evaluates exactly the
/// Knuth–Moore minimum `d^⌊n/2⌋ + d^⌈n/2⌉ − 1` leaves.
pub struct ConstLeaf(pub Value);

impl LeafValues for ConstLeaf {
    fn value(&self, _path: &[u32]) -> Value {
        self.0
    }
}

/// I.i.d. integer MIN/MAX leaves uniform in `[lo, hi]`.
pub struct IidMinMax {
    lo: Value,
    span: u64,
    seed: u64,
}

impl IidMinMax {
    /// Uniform leaves in the inclusive range `[lo, hi]`.
    pub fn new(lo: Value, hi: Value, seed: u64) -> Self {
        assert!(lo <= hi);
        Self {
            lo,
            span: (hi - lo) as u64 + 1,
            seed,
        }
    }
}

impl LeafValues for IidMinMax {
    fn value(&self, path: &[u32]) -> Value {
        self.lo + (path_hash(self.seed, path) % self.span) as Value
    }
}

/// Worst-ordered MIN/MAX leaves: at every node the children are ordered
/// from worst to best for the player to move, so α-β never achieves a
/// cutoff and evaluates all `d^n` leaves.
///
/// Construction: each node owns a half-open value interval; a MAX node
/// splits its interval into `d` increasing bands (child values improve
/// left to right), a MIN node into `d` decreasing bands.  All values in a
/// subtree stay inside the subtree's band, so no window `(α, β)` ever
/// closes before the last child.
pub struct WorstOrderedMinMax {
    degree: u32,
    height: u32,
}

impl WorstOrderedMinMax {
    /// Worst-ordered leaves for `M(d,n)`.
    pub fn new(degree: u32, height: u32) -> Self {
        // Interval width d^height must fit comfortably in i64.
        let bits = (degree as f64).log2() * height as f64;
        assert!(bits < 61.0, "d^n too large for the interval construction");
        Self { degree, height }
    }
}

impl LeafValues for WorstOrderedMinMax {
    fn value(&self, path: &[u32]) -> Value {
        let d = self.degree as i64;
        let mut lo: i64 = 0;
        let mut width: i64 = d.pow(self.height);
        for (depth, &i) in path.iter().enumerate() {
            width /= d;
            let is_max = depth % 2 == 0;
            let band = if is_max { i as i64 } else { d - 1 - i as i64 };
            lo += band * width;
        }
        lo // width is 1 at leaf depth
    }
}

/// Depth-correlated MIN/MAX leaves: each edge contributes a bounded
/// pseudo-random increment and the leaf value is the sum along its
/// path — a random-walk model in which sibling subtrees have similar
/// values, like the incremental evaluations of real game programs.
/// Correlation makes the left-to-right ordering informative, so α-β
/// behaves between the best-ordered and i.i.d. extremes.
pub struct CorrelatedMinMax {
    seed: u64,
    /// Per-edge increments are drawn uniformly from `[-spread, spread]`.
    spread: Value,
}

impl CorrelatedMinMax {
    /// Random-walk leaves with the given per-edge spread.
    pub fn new(spread: Value, seed: u64) -> Self {
        assert!(spread >= 0);
        CorrelatedMinMax { seed, spread }
    }
}

impl LeafValues for CorrelatedMinMax {
    fn value(&self, path: &[u32]) -> Value {
        let span = 2 * self.spread as u64 + 1;
        let mut sum: Value = 0;
        for i in 0..path.len() {
            let h = path_hash(self.seed, &path[..=i]);
            sum += (h % span) as Value - self.spread;
        }
        sum
    }
}

impl UniformSource<CorrelatedMinMax> {
    /// `M(d,n)` with random-walk (depth-correlated) leaves.
    pub fn minmax_correlated(degree: u32, height: u32, spread: Value, seed: u64) -> Self {
        Self::new(degree, height, CorrelatedMinMax::new(spread, seed))
    }
}

/// The near-uniform trees of Corollary 2: every internal node has between
/// `⌈α·d⌉` and `d` children and every root-leaf path has length between
/// `⌈β·n⌉` and `n`.  Shape decisions are deterministic functions of
/// `(seed, path)` so the tree is consistent and reproducible.
pub struct NearUniformSource<L> {
    degree: u32,
    height: u32,
    min_degree: u32,
    min_height: u32,
    seed: u64,
    leaves: L,
}

impl<L: LeafValues> NearUniformSource<L> {
    /// A near-uniform tree: arity in `[⌈alpha·d⌉, d]`, leaf depth in
    /// `[⌈beta·n⌉, n]`.
    pub fn new(degree: u32, height: u32, alpha: f64, beta: f64, seed: u64, leaves: L) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0);
        assert!((0.0..=1.0).contains(&beta) && beta > 0.0);
        let min_degree = ((alpha * degree as f64).ceil() as u32).clamp(1, degree);
        let min_height = ((beta * height as f64).ceil() as u32).min(height);
        Self {
            degree,
            height,
            min_degree,
            min_height,
            seed,
            leaves,
        }
    }
}

impl<L: LeafValues> TreeSource for NearUniformSource<L> {
    fn arity(&self, path: &[u32]) -> u32 {
        let depth = path.len() as u32;
        if depth >= self.height {
            return 0;
        }
        let h = path_hash(self.seed ^ 0x5eed_1234, path);
        // After the minimum depth, roughly one node in four becomes an
        // early leaf.
        if depth >= self.min_height && h.is_multiple_of(4) {
            return 0;
        }
        let span = self.degree - self.min_degree + 1;
        self.min_degree + ((h >> 32) % span as u64) as u32
    }

    fn leaf_value(&self, path: &[u32]) -> Value {
        self.leaves.value(path)
    }

    fn height_hint(&self) -> Option<u32> {
        Some(self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;

    #[test]
    fn uniform_source_shape() {
        let s = UniformSource::nor_iid(3, 2, 0.5, 1);
        assert_eq!(s.arity(&[]), 3);
        assert_eq!(s.arity(&[0]), 3);
        assert_eq!(s.arity(&[0, 2]), 0);
        let t = ExplicitTree::from_source(&&s, 10);
        assert!(t.is_uniform(3, 2));
    }

    #[test]
    fn iid_bernoulli_extremes() {
        let ones = IidBernoulli::new(1.0, 7);
        let zeros = IidBernoulli::new(0.0, 7);
        for path in [&[0u32, 1][..], &[2, 2], &[1, 0]] {
            assert_eq!(ones.value(path), 1);
            assert_eq!(zeros.value(path), 0);
        }
    }

    #[test]
    fn iid_bernoulli_is_seed_dependent_and_reproducible() {
        let a = IidBernoulli::new(0.5, 1);
        let b = IidBernoulli::new(0.5, 1);
        let c = IidBernoulli::new(0.5, 2);
        let paths: Vec<Vec<u32>> = (0..64).map(|i| vec![i % 2, i / 2]).collect();
        let va: Vec<_> = paths.iter().map(|p| a.value(p)).collect();
        let vb: Vec<_> = paths.iter().map(|p| b.value(p)).collect();
        let vc: Vec<_> = paths.iter().map(|p| c.value(p)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "different seeds should differ somewhere");
    }

    #[test]
    fn iid_bernoulli_frequency_tracks_p() {
        let g = IidBernoulli::new(0.25, 42);
        let mut ones = 0;
        let trials = 4000u32;
        for i in 0..trials {
            ones += g.value(&[i, i >> 8]) as u32;
        }
        let freq = ones as f64 / trials as f64;
        assert!((freq - 0.25).abs() < 0.05, "freq {freq} too far from 0.25");
    }

    #[test]
    fn worst_case_targets_binary() {
        // Root target 1, d = 2: children targets (0,0); a 0-node's
        // children are (0,1).
        let w = WorstCaseNor::new(2);
        assert_eq!(w.target(&[]), 1);
        assert_eq!(w.target(&[0]), 0);
        assert_eq!(w.target(&[1]), 0);
        assert_eq!(w.target(&[0, 0]), 0);
        assert_eq!(w.target(&[0, 1]), 1);
    }

    #[test]
    fn worst_ordered_minmax_values_are_distinct_and_in_range() {
        let g = WorstOrderedMinMax::new(2, 3);
        let mut vals = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    vals.push(g.value(&[a, b, c]));
                }
            }
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "values must be distinct: {vals:?}");
        assert!(vals.iter().all(|&v| (0..8).contains(&v)));
    }

    #[test]
    fn worst_ordered_children_improve_for_the_mover() {
        // At the MAX root, subtree values must increase left to right.
        let g = WorstOrderedMinMax::new(3, 2);
        let s = UniformSource::new(3, 2, g);
        let t = ExplicitTree::from_source(&&s, 5);
        let vals: Vec<Value> = match &t {
            ExplicitTree::Internal(c) => c
                .iter()
                .map(|child| match child {
                    // child is a MIN node: its value is the min leaf.
                    ExplicitTree::Internal(leaves) => leaves
                        .iter()
                        .map(|l| match l {
                            ExplicitTree::Leaf(v) => *v,
                            _ => unreachable!(),
                        })
                        .min()
                        .unwrap(),
                    _ => unreachable!(),
                })
                .collect(),
            _ => unreachable!(),
        };
        assert!(vals.windows(2).all(|w| w[0] < w[1]), "{vals:?}");
    }

    #[test]
    fn near_uniform_respects_bounds() {
        let s = NearUniformSource::new(4, 8, 0.5, 0.5, 3, IidBernoulli::new(0.5, 3));
        // Probe a bunch of paths; arity must be 0 or within [2, 4], and no
        // leaf may appear above depth 4.
        fn walk(s: &NearUniformSource<IidBernoulli>, path: &mut Vec<u32>, depth: u32) {
            let d = s.arity(path);
            if d == 0 {
                assert!(depth >= 4, "leaf too shallow at {path:?}");
                return;
            }
            assert!((2..=4).contains(&d), "arity {d} out of range");
            if depth < 8 {
                for i in 0..d {
                    path.push(i);
                    walk(s, path, depth + 1);
                    path.pop();
                }
            }
        }
        walk(&s, &mut Vec::new(), 0);
    }

    #[test]
    fn correlated_leaves_are_path_correlated() {
        // Sibling leaves share all but the last edge, so their values
        // differ by at most 2*spread; distant leaves can drift further.
        let g = CorrelatedMinMax::new(5, 3);
        let a = g.value(&[0, 0, 0, 0]);
        let b = g.value(&[0, 0, 0, 1]);
        assert!((a - b).abs() <= 10, "siblings too far apart: {a} vs {b}");
        // Deterministic.
        assert_eq!(a, CorrelatedMinMax::new(5, 3).value(&[0, 0, 0, 0]));
    }

    #[test]
    fn correlated_ordering_helps_alpha_beta() {
        use crate::minimax::seq_alphabeta;
        // Correlated trees should cost alpha-beta no more than i.i.d.
        // trees of the same size on average (ordering information).
        let mut corr = 0u64;
        let mut iid = 0u64;
        for seed in 0..10 {
            let c = UniformSource::minmax_correlated(2, 10, 4, seed);
            corr += seq_alphabeta(&c, false).leaves_evaluated;
            let u = UniformSource::minmax_iid(2, 10, -40, 40, seed);
            iid += seq_alphabeta(&u, false).leaves_evaluated;
        }
        assert!(
            corr < iid * 2,
            "correlated {corr} unexpectedly dwarfs iid {iid}"
        );
    }

    #[test]
    fn critical_bias_value() {
        assert!((CRITICAL_BIAS - (5f64.sqrt() - 1.0) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn critical_bias_fixpoints() {
        // d = 2: x = (1-x)² ⇒ x = (3-√5)/2.
        let x2 = critical_bias(2);
        assert!((x2 - (3.0 - 5f64.sqrt()) / 2.0).abs() < 1e-12);
        assert!(
            (x2 + CRITICAL_BIAS - 1.0).abs() < 1e-9,
            "complement relation"
        );
        for d in [1u32, 3, 5, 8] {
            let x = critical_bias(d);
            assert!((0.0..=1.0).contains(&x));
            assert!(((1.0 - x).powi(d as i32) - x).abs() < 1e-12, "d={d}");
        }
    }
}
