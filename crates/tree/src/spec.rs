//! Generator specs: `kind:key=value,key=value` strings that name a
//! workload family, e.g. `worst:d=2,n=10` or
//! `minmax:d=3,n=6,lo=0,hi=100,seed=7`.

use crate::gen::{critical_bias, UniformSource};
use crate::{TreeSource, Value};
use std::collections::BTreeMap;

/// A parsed generator specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Family name (`nor`, `worst`, `crit`, `allones`, `minmax`,
    /// `minmax-best`, `minmax-worst`, `minmax-corr`).
    pub kind: String,
    /// Key/value parameters.
    pub params: BTreeMap<String, String>,
}

impl GenSpec {
    /// Parse `kind:key=val,...`.
    pub fn parse(text: &str) -> Result<GenSpec, String> {
        let (kind, rest) = match text.split_once(':') {
            Some((k, r)) => (k, r),
            None => (text, ""),
        };
        if kind.is_empty() {
            return Err("empty generator kind".into());
        }
        let mut params = BTreeMap::new();
        for piece in rest.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = piece
                .split_once('=')
                .ok_or_else(|| format!("bad parameter {piece:?} (want key=value)"))?;
            params.insert(k.trim().to_string(), v.trim().to_string());
        }
        Ok(GenSpec {
            kind: kind.trim().to_string(),
            params,
        })
    }

    fn u32_param(&self, key: &str, default: Option<u32>) -> Result<u32, String> {
        match self.params.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad {key}={v}: {e}")),
            None => default.ok_or_else(|| format!("missing required parameter {key}")),
        }
    }

    fn i64_param(&self, key: &str, default: i64) -> Result<Value, String> {
        match self.params.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad {key}={v}: {e}")),
            None => Ok(default),
        }
    }

    fn f64_param(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.params.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad {key}={v}: {e}")),
            None => Ok(default),
        }
    }

    fn u64_param(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.params.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad {key}={v}: {e}")),
            None => Ok(default),
        }
    }

    /// Materialize the spec as a tree source.
    ///
    /// Type-erased convenience over [`GenSpec::build_visit`]; hot paths
    /// that evaluate millions of nodes should prefer the visitor, which
    /// hands them the concrete source type and so monomorphizes their
    /// `arity`/`leaf_value` loops instead of paying a virtual call per
    /// node.
    pub fn build(&self) -> Result<Box<dyn TreeSource + Send>, String> {
        struct Boxer;
        impl SourceVisitor for Boxer {
            type Out = Box<dyn TreeSource + Send>;
            fn visit<S: TreeSource + Send + 'static>(self, source: S) -> Self::Out {
                Box::new(source)
            }
        }
        self.build_visit(Boxer)
    }

    /// Materialize the spec and hand the **concrete** source type to
    /// `visitor` — the monomorphizing counterpart of [`GenSpec::build`].
    pub fn build_visit<V: SourceVisitor>(&self, visitor: V) -> Result<V::Out, String> {
        let d = self.u32_param("d", Some(2))?;
        let n = self.u32_param("n", None)?;
        if d == 0 {
            return Err("d must be at least 1".into());
        }
        let seed = self.u64_param("seed", 0)?;
        Ok(match self.kind.as_str() {
            "nor" => {
                let p = self.f64_param("p", 0.5)?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("p={p} is not a probability"));
                }
                visitor.visit(UniformSource::nor_iid(d, n, p, seed))
            }
            "crit" => visitor.visit(UniformSource::nor_iid(d, n, critical_bias(d), seed)),
            "worst" => visitor.visit(UniformSource::nor_worst_case(d, n)),
            "allones" => visitor.visit(UniformSource::new(d, n, crate::gen::ConstLeaf(1))),
            "minmax" => {
                let lo = self.i64_param("lo", 0)?;
                let hi = self.i64_param("hi", 1 << 20)?;
                if lo > hi {
                    return Err(format!("lo={lo} exceeds hi={hi}"));
                }
                visitor.visit(UniformSource::minmax_iid(d, n, lo, hi, seed))
            }
            "minmax-best" => {
                let v = self.i64_param("value", 0)?;
                visitor.visit(UniformSource::minmax_best_ordered(d, n, v))
            }
            "minmax-worst" => visitor.visit(UniformSource::minmax_worst_ordered(d, n)),
            "minmax-corr" => {
                let spread = self.i64_param("spread", 8)?;
                visitor.visit(UniformSource::minmax_correlated(d, n, spread, seed))
            }
            other => return Err(format!("unknown generator kind {other:?}")),
        })
    }

    /// Is this a MIN/MAX (as opposed to NOR) family?
    pub fn is_minmax(&self) -> bool {
        self.kind.starts_with("minmax")
    }
}

/// Receives the concrete source type a [`GenSpec`] names, via
/// [`GenSpec::build_visit`].  Implementors get one generic call per
/// materialization, so everything they do with the source compiles to
/// direct (inlinable) `arity`/`leaf_value` calls.
pub trait SourceVisitor {
    /// The visit result.
    type Out;
    /// Called exactly once with the materialized source.
    fn visit<S: TreeSource + Send + 'static>(self, source: S) -> Self::Out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimax::seq_solve;

    #[test]
    fn parses_kinds_and_params() {
        let s = GenSpec::parse("worst:d=2,n=10").unwrap();
        assert_eq!(s.kind, "worst");
        assert_eq!(s.params.get("n").unwrap(), "10");
        assert!(!s.is_minmax());
        let s = GenSpec::parse("minmax-corr:d=3,n=6,spread=4,seed=9").unwrap();
        assert!(s.is_minmax());
    }

    #[test]
    fn builds_every_kind() {
        for spec in [
            "nor:n=4",
            "nor:d=3,n=4,p=0.25,seed=5",
            "crit:n=6",
            "worst:n=5",
            "allones:n=4",
            "minmax:n=4,lo=-5,hi=5",
            "minmax-best:n=4,value=3",
            "minmax-worst:n=4",
            "minmax-corr:n=4",
        ] {
            let src = GenSpec::parse(spec).unwrap().build().unwrap();
            // Smoke: evaluate something.
            let st = seq_solve(&src, false);
            assert!(st.leaves_evaluated >= 1, "{spec}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(GenSpec::parse(":n=4").is_err());
        assert!(GenSpec::parse("nor:n").is_err());
        assert!(GenSpec::parse("nor:n=4").unwrap().build().is_ok());
        assert!(
            GenSpec::parse("nor").unwrap().build().is_err(),
            "n required"
        );
        assert!(GenSpec::parse("nope:n=4").unwrap().build().is_err());
        assert!(GenSpec::parse("nor:n=4,p=2.0").unwrap().build().is_err());
        assert!(GenSpec::parse("minmax:n=4,lo=9,hi=1")
            .unwrap()
            .build()
            .is_err());
        assert!(GenSpec::parse("nor:n=4,d=0").unwrap().build().is_err());
    }

    #[test]
    fn worst_spec_really_is_worst() {
        let src = GenSpec::parse("worst:d=2,n=6").unwrap().build().unwrap();
        assert_eq!(seq_solve(&src, false).leaves_evaluated, 64);
    }
}
