//! Shape statistics for tree sources: arity and leaf-depth histograms,
//! leaf-value distributions.  Used to validate generators (e.g. that a
//! Corollary 2 near-uniform source really keeps its promised arity and
//! depth ranges) and to characterize workloads in reports.

use crate::source::{TreeSource, Value};
use std::collections::BTreeMap;

/// Shape statistics of (a truncated exploration of) a tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShapeStats {
    /// `arity → count` over internal nodes.
    pub arity_histogram: BTreeMap<u32, u64>,
    /// `depth → count` over leaves.
    pub leaf_depth_histogram: BTreeMap<u32, u64>,
    /// `value → count` over leaves.
    pub leaf_value_histogram: BTreeMap<Value, u64>,
    /// Total nodes visited.
    pub nodes: u64,
    /// True if the walk was cut off by the node budget.
    pub truncated: bool,
}

impl ShapeStats {
    /// Number of leaves seen.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_depth_histogram.values().sum()
    }

    /// Smallest and largest leaf depth seen.
    pub fn depth_range(&self) -> Option<(u32, u32)> {
        let min = *self.leaf_depth_histogram.keys().next()?;
        let max = *self.leaf_depth_histogram.keys().next_back()?;
        Some((min, max))
    }

    /// Smallest and largest internal arity seen.
    pub fn arity_range(&self) -> Option<(u32, u32)> {
        let min = *self.arity_histogram.keys().next()?;
        let max = *self.arity_histogram.keys().next_back()?;
        Some((min, max))
    }

    /// Mean leaf value.
    pub fn mean_leaf_value(&self) -> f64 {
        let n = self.leaf_count();
        if n == 0 {
            return 0.0;
        }
        let sum: i128 = self
            .leaf_value_histogram
            .iter()
            .map(|(&v, &c)| v as i128 * c as i128)
            .sum();
        sum as f64 / n as f64
    }
}

/// Walk `source` depth-first (up to `max_nodes` nodes) and collect shape
/// statistics.
pub fn shape_stats<S: TreeSource>(source: &S, max_nodes: u64) -> ShapeStats {
    let mut st = ShapeStats::default();
    let mut path = Vec::new();
    walk(source, &mut path, max_nodes, &mut st);
    st
}

fn walk<S: TreeSource>(s: &S, path: &mut Vec<u32>, budget: u64, st: &mut ShapeStats) {
    if st.nodes >= budget {
        st.truncated = true;
        return;
    }
    st.nodes += 1;
    let d = s.arity(path);
    if d == 0 {
        *st.leaf_depth_histogram
            .entry(path.len() as u32)
            .or_insert(0) += 1;
        *st.leaf_value_histogram
            .entry(s.leaf_value(path))
            .or_insert(0) += 1;
        return;
    }
    *st.arity_histogram.entry(d).or_insert(0) += 1;
    for i in 0..d {
        path.push(i);
        walk(s, path, budget, st);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{IidBernoulli, NearUniformSource, UniformSource};

    #[test]
    fn uniform_tree_shape() {
        let s = UniformSource::nor_iid(3, 4, 0.5, 1);
        let st = shape_stats(&s, u64::MAX);
        assert!(!st.truncated);
        assert_eq!(st.leaf_count(), 81);
        assert_eq!(st.arity_range(), Some((3, 3)));
        assert_eq!(st.depth_range(), Some((4, 4)));
        // 1 + 3 + 9 + 27 internal + 81 leaves = 121 nodes.
        assert_eq!(st.nodes, 121);
    }

    #[test]
    fn near_uniform_respects_corollary2_bounds() {
        let s = NearUniformSource::new(4, 8, 0.5, 0.5, 7, IidBernoulli::new(0.5, 7));
        let st = shape_stats(&s, 2_000_000);
        let (amin, amax) = st.arity_range().unwrap();
        assert!(amin >= 2, "arity below ceil(0.5 * 4)");
        assert!(amax <= 4);
        let (dmin, dmax) = st.depth_range().unwrap();
        assert!(dmin >= 4, "leaf above ceil(0.5 * 8)");
        assert!(dmax <= 8);
    }

    #[test]
    fn bernoulli_leaf_values_track_bias() {
        let s = UniformSource::nor_iid(2, 10, 0.25, 3);
        let st = shape_stats(&s, u64::MAX);
        let ones = *st.leaf_value_histogram.get(&1).unwrap_or(&0);
        let freq = ones as f64 / st.leaf_count() as f64;
        assert!((freq - 0.25).abs() < 0.05, "freq {freq}");
        assert!((st.mean_leaf_value() - freq).abs() < 1e-12);
    }

    #[test]
    fn truncation_is_reported() {
        let s = UniformSource::nor_iid(2, 20, 0.5, 1);
        let st = shape_stats(&s, 1000);
        assert!(st.truncated);
        assert!(st.nodes <= 1001);
    }

    #[test]
    fn single_leaf_tree() {
        let s = UniformSource::nor_iid(2, 0, 1.0, 0);
        let st = shape_stats(&s, 100);
        assert_eq!(st.leaf_count(), 1);
        assert_eq!(st.arity_range(), None);
        assert_eq!(st.depth_range(), Some((0, 0)));
    }
}
