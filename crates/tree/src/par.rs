//! Work-stealing intra-evaluation parallelism: **gt-par**, one
//! evaluation across 1..K real threads.
//!
//! The paper's central result is that *one* game-tree evaluation can be
//! spread over processors with linear speed-up (Theorems 1 and 3); its
//! Section 7 machine realizes that with a static processor-per-level
//! assignment and a *pre-emption rule* — work made moot by a reported
//! value is simply never started, and losers already running are
//! ignored rather than aborted.  This module is the intra-process
//! translation:
//!
//! * a [`ParTask`] names one unit of stealable work — *evaluate the
//!   subtree at this path and fold the value into this node* — exactly
//!   the shape `gt-split` ships across a fleet as a `SubtreeSpec`, kept
//!   in-process here (path in the task, window read at execution time);
//! * each worker owns a deque ([`Chase–Lev`-style discipline]: the
//!   owner pushes and pops at the back, idle workers steal from the
//!   front — realized with a mutexed `VecDeque`, std-only);
//! * every split node carries a shared [`AtomicWindow`] — α and β
//!   packed into one `AtomicU64` — that stealers re-probe before
//!   running a task, so a cutoff anywhere *retires* descendants'
//!   pending tasks without any abort message (the pre-emption rule);
//!   tasks already running simply finish and their late values are
//!   discarded by the settled [`Aggregator`];
//! * [`par_solve`] / [`par_alphabeta`] split PV-style (Young Brothers
//!   Wait): a node's eldest child is evaluated first and settles the
//!   window; only then do its siblings become stealable.
//!
//! [`Chase–Lev`-style discipline]: https://doi.org/10.1145/1073970.1073974
//!
//! ## Value determinism
//!
//! Sibling results are absorbed in *arrival* order, which varies run to
//! run.  The root value is still deterministic: under the full window
//! the fold returns the exact minimax (or NOR) value for any absorption
//! order, and under a non-trivial `(α, β)` a value strictly inside the
//! window is returned exactly (see `tests/par_proptest.rs`).  Only the
//! fail-soft *bound* reported when the root fails low/high may differ
//! from the sequential one — both are correct bounds on the same side.
//!
//! ## Cancellation
//!
//! One `AtomicBool` — the serving layer's per-flight flag — is polled
//! by every worker loop and threaded into every sequential
//! sub-evaluation, so a deadline reaper flipping that single flag
//! stops *all* threads of a multi-worker grant cooperatively.

use crate::minimax::{seq_alphabeta_windowed_cancellable, seq_solve_cancellable};
use crate::source::{Cancelled, TreeSource, Value};
use crate::split::{Aggregator, NodeMode, SubtreeView};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared α/β window packed into one `AtomicU64`, so stealers can
/// re-probe the current bounds (and detect `α ≥ β`) with a single
/// relaxed load, no lock.
///
/// Bounds are stored as two `i32` halves.  Values outside the `i32`
/// range are rounded *outward* (α down, β up, with `i32::MIN`/`MAX`
/// decoding back to `Value::MIN`/`MAX`), so the stored window is never
/// narrower than the true one — out-of-range bounds can only cost
/// pruning, never correctness.  Every generator in this workspace
/// produces leaf values far inside `i32`, so in practice the packing
/// is exact.
#[derive(Debug)]
pub struct AtomicWindow(AtomicU64);

fn enc_alpha(v: Value) -> i32 {
    if v <= i32::MIN as Value {
        i32::MIN
    } else if v >= i32::MAX as Value {
        i32::MAX - 1 // round α down: wider window, still sound
    } else {
        v as i32
    }
}

fn enc_beta(v: Value) -> i32 {
    if v >= i32::MAX as Value {
        i32::MAX
    } else if v <= i32::MIN as Value {
        i32::MIN + 1 // round β up: wider window, still sound
    } else {
        v as i32
    }
}

fn dec_alpha(e: i32) -> Value {
    if e == i32::MIN {
        Value::MIN
    } else {
        e as Value
    }
}

fn dec_beta(e: i32) -> Value {
    if e == i32::MAX {
        Value::MAX
    } else {
        e as Value
    }
}

fn pack(a: i32, b: i32) -> u64 {
    ((a as u32 as u64) << 32) | (b as u32 as u64)
}

fn unpack(x: u64) -> (i32, i32) {
    ((x >> 32) as u32 as i32, x as u32 as i32)
}

impl AtomicWindow {
    /// A window starting at `(alpha, beta)`.
    pub fn new(alpha: Value, beta: Value) -> AtomicWindow {
        AtomicWindow(AtomicU64::new(pack(enc_alpha(alpha), enc_beta(beta))))
    }

    /// The current `(α, β)`.
    pub fn load(&self) -> (Value, Value) {
        let (a, b) = unpack(self.0.load(Ordering::Relaxed));
        (dec_alpha(a), dec_beta(b))
    }

    /// Narrow toward `(alpha, beta)`: each bound only ever moves
    /// inward (α up, β down), so concurrent narrowings commute.
    /// Returns how many bounds actually moved (0, 1 or 2).
    pub fn narrow(&self, alpha: Value, beta: Value) -> u32 {
        let (na, nb) = (enc_alpha(alpha), enc_beta(beta));
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let (ca, cb) = unpack(cur);
            let (ta, tb) = (ca.max(na), cb.min(nb));
            if ta == ca && tb == cb {
                return 0;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(ta, tb),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return u32::from(ta != ca) + u32::from(tb != cb),
                Err(now) => cur = now,
            }
        }
    }

    /// Has the window closed (`α ≥ β`)?  A closed window means a
    /// cutoff fired somewhere: pending tasks under it are moot.
    pub fn is_cut(&self) -> bool {
        let (a, b) = self.load();
        a >= b
    }
}

/// Counters and result of one parallel evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParStats {
    /// Root value.
    pub value: Value,
    /// Leaves evaluated across all workers (the paper's `W(T)`).
    pub leaves_evaluated: u64,
    /// Nodes expanded across all workers.
    pub nodes_expanded: u64,
    /// Pruning events: α ≥ β cutoffs and NOR short-circuits.
    pub cutoffs: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Tasks retired unrun (or discarded on late arrival) because a
    /// cutoff settled their node first — Section 7's pre-emption rule.
    pub retired: u64,
    /// Successful [`AtomicWindow::narrow`] bound movements.
    pub window_narrowings: u64,
    /// Worker threads the evaluation actually ran on.
    pub workers: u32,
}

/// How values combine up the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvalKind {
    Nor,
    /// MIN/MAX with the given root player.
    Minmax {
        root_maximizing: bool,
    },
}

impl EvalKind {
    fn mode_at(self, depth: usize) -> NodeMode {
        match self {
            EvalKind::Nor => NodeMode::Nor,
            EvalKind::Minmax { root_maximizing } => {
                if depth.is_multiple_of(2) == root_maximizing {
                    NodeMode::Max
                } else {
                    NodeMode::Min
                }
            }
        }
    }
}

/// One split node: an internal tree node whose children are evaluated
/// by (possibly) different workers and folded through a shared
/// [`Aggregator`].
struct NodeState {
    path: Vec<u32>,
    parent: Option<Arc<NodeState>>,
    agg: Mutex<Aggregator>,
    window: AtomicWindow,
    /// Set the instant the aggregator settles; probed lock-free by
    /// workers deciding whether a pending task is moot.
    done: AtomicBool,
    /// Set once the eldest child's value has been absorbed and the
    /// younger brothers have been made stealable (YBW).
    published: AtomicBool,
}

/// One stealable unit of work: evaluate the subtree at `path` (a child
/// of `node`) under the node's *current* window and fold the value
/// into the node.  The in-process counterpart of gt-split's
/// `SubtreeSpec`: same path-plus-window identity, but the window is
/// read from the shared [`AtomicWindow`] at execution time instead of
/// being frozen at dispatch.
struct ParTask {
    node: Arc<NodeState>,
    path: Vec<u32>,
}

struct Pool<'a, S> {
    source: &'a S,
    kind: EvalKind,
    cancel: &'a AtomicBool,
    split_depth: usize,
    deques: Vec<Mutex<VecDeque<ParTask>>>,
    finished: AtomicBool,
    result: Mutex<Option<Value>>,
    leaves: AtomicU64,
    expanded: AtomicU64,
    cutoffs: AtomicU64,
    steals: AtomicU64,
    retired: AtomicU64,
    narrowings: AtomicU64,
}

impl<'a, S: TreeSource> Pool<'a, S> {
    fn push(&self, worker: usize, task: ParTask) {
        self.deques[worker].lock().unwrap().push_back(task);
    }

    /// Owner pops from the back of its own deque; failing that, steals
    /// from the front of the others' (round-robin from its neighbour).
    fn pop_or_steal(&self, worker: usize) -> Option<ParTask> {
        if let Some(t) = self.deques[worker].lock().unwrap().pop_back() {
            return Some(t);
        }
        let k = self.deques.len();
        for step in 1..k {
            let victim = (worker + step) % k;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Evaluate the subtree at `path` sequentially under `(alpha, beta)`.
    fn eval_leafward(&self, path: &[u32], alpha: Value, beta: Value) -> Result<Value, Cancelled> {
        let view = SubtreeView::new(self.source, path.to_vec());
        let st = match self.kind {
            EvalKind::Nor => seq_solve_cancellable(&view, false, self.cancel)?,
            EvalKind::Minmax { .. } => {
                let maximizing = self.kind.mode_at(path.len()) == NodeMode::Max;
                seq_alphabeta_windowed_cancellable(
                    &view,
                    false,
                    alpha,
                    beta,
                    maximizing,
                    self.cancel,
                )?
            }
        };
        self.leaves
            .fetch_add(st.leaves_evaluated, Ordering::Relaxed);
        self.expanded
            .fetch_add(st.nodes_expanded, Ordering::Relaxed);
        self.cutoffs.fetch_add(st.cutoffs, Ordering::Relaxed);
        Ok(st.value)
    }

    /// Fold `value` into `node`; on settle, cascade into the parent.
    /// The first value a node absorbs is always its eldest child's
    /// (YBW guarantees no sibling runs earlier), so absorption doubles
    /// as the publication trigger for the younger brothers.
    fn absorb(&self, worker: usize, node: &Arc<NodeState>, value: Value) -> Result<(), Cancelled> {
        let (settle, publish) = {
            let mut agg = node.agg.lock().unwrap();
            if agg.settled() {
                // A loser finishing after the cutoff: ignored, per the
                // pre-emption rule.
                self.retired.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if agg.absorb(value) {
                self.cutoffs.fetch_add(1, Ordering::Relaxed);
            }
            let (a, b) = agg.window();
            let moved = node.window.narrow(a, b);
            if moved > 0 {
                self.narrowings
                    .fetch_add(u64::from(moved), Ordering::Relaxed);
            }
            let settled = agg.settled();
            if settled {
                node.done.store(true, Ordering::Relaxed);
            }
            let was_published = node.published.swap(true, Ordering::Relaxed);
            let publish = (!was_published && !settled).then(|| agg.expected());
            let settle = settled.then(|| {
                // Children absorbed so far plus the ones queued (if
                // publication happened) count themselves; children a
                // pre-publication cutoff kept from ever being queued
                // are only visible here.
                let unqueued = if was_published {
                    0
                } else {
                    agg.expected() - agg.seen()
                };
                (agg.value(), unqueued)
            });
            (settle, publish)
        };
        if let Some(expected) = publish {
            // Eldest absorbed, node still open: the younger brothers
            // become stealable now.
            for i in 1..expected {
                let mut path = node.path.clone();
                path.push(i);
                self.push(
                    worker,
                    ParTask {
                        node: Arc::clone(node),
                        path,
                    },
                );
            }
        }
        if let Some((value, unqueued)) = settle {
            if unqueued > 0 {
                self.retired
                    .fetch_add(u64::from(unqueued), Ordering::Relaxed);
            }
            match &node.parent {
                Some(parent) => self.absorb(worker, parent, value)?,
                None => {
                    *self.result.lock().unwrap() = Some(value);
                    self.finished.store(true, Ordering::Release);
                }
            }
        }
        Ok(())
    }

    /// Run one task: re-probe, then either expand the child into a new
    /// split node (PV-first: its eldest grandchild is evaluated before
    /// returning) or evaluate it sequentially and fold the value in.
    fn run_task(&self, worker: usize, task: ParTask) -> Result<(), Cancelled> {
        let ParTask { node, path } = task;
        // The pre-emption probe: a settled node (or closed window)
        // retires the task before any work happens.
        if node.done.load(Ordering::Relaxed) || node.window.is_cut() {
            self.retired.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let d = self.source.arity(&path);
        let splittable = d >= 2
            && path.len() < self.split_depth
            && match self.source.height_hint() {
                // Don't split nodes whose subtrees are trivial.
                Some(h) => path.len() as u32 + 2 <= h,
                None => true,
            };
        if !splittable {
            let (alpha, beta) = node.window.load();
            let value = self.eval_leafward(&path, alpha, beta)?;
            return self.absorb(worker, &node, value);
        }
        // Split: the child becomes a node of its own, inheriting the
        // parent's *current* window (later parent narrowings do not
        // chase it — sound, merely less pruning; see gt-tree::split).
        let (alpha, beta) = node.window.load();
        self.expanded.fetch_add(1, Ordering::Relaxed);
        let depth = path.len();
        let child = Arc::new(NodeState {
            path,
            parent: Some(node),
            agg: Mutex::new(Aggregator::new(self.kind.mode_at(depth), d, alpha, beta)),
            window: AtomicWindow::new(alpha, beta),
            done: AtomicBool::new(false),
            published: AtomicBool::new(false),
        });
        // Young Brothers Wait: the eldest grandchild is evaluated
        // before anything under this node is stealable.
        let mut eldest = child.path.clone();
        eldest.push(0);
        self.run_task(
            worker,
            ParTask {
                node: child,
                path: eldest,
            },
        )
    }

    fn worker_loop(&self, worker: usize) -> Result<(), Cancelled> {
        let mut idle_spins = 0u32;
        loop {
            if self.finished.load(Ordering::Acquire) {
                return Ok(());
            }
            if self.cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            match self.pop_or_steal(worker) {
                Some(task) => {
                    idle_spins = 0;
                    self.run_task(worker, task)?;
                }
                None => {
                    // Nothing to do: someone else holds the last task.
                    // Yield first (cheap on a loaded host), then back
                    // off to a short sleep.
                    idle_spins += 1;
                    if idle_spins < 16 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                }
            }
        }
    }
}

/// Map a sequential run onto [`ParStats`] (the 1-worker degenerate
/// case, and trees too small to split).
fn seq_fallback<S: TreeSource>(
    source: &S,
    kind: EvalKind,
    alpha: Value,
    beta: Value,
    cancel: &AtomicBool,
) -> Result<ParStats, Cancelled> {
    let st = match kind {
        EvalKind::Nor => seq_solve_cancellable(source, false, cancel)?,
        EvalKind::Minmax { root_maximizing } => {
            seq_alphabeta_windowed_cancellable(source, false, alpha, beta, root_maximizing, cancel)?
        }
    };
    Ok(ParStats {
        value: st.value,
        leaves_evaluated: st.leaves_evaluated,
        nodes_expanded: st.nodes_expanded,
        cutoffs: st.cutoffs,
        steals: 0,
        retired: 0,
        window_narrowings: 0,
        workers: 1,
    })
}

/// How deep the PV split descends: deep enough that the per-level
/// sibling tasks can feed `workers` threads, shallow enough that tasks
/// stay chunky.
fn split_depth(d: u32, workers: u32) -> usize {
    let per_level = d.saturating_sub(1).max(1);
    ((2 * workers).div_ceil(per_level)).clamp(2, 8) as usize
}

fn par_evaluate<S: TreeSource>(
    source: &S,
    kind: EvalKind,
    workers: u32,
    alpha: Value,
    beta: Value,
    cancel: &AtomicBool,
) -> Result<ParStats, Cancelled> {
    let d = source.arity(&[]);
    if workers <= 1 || d < 2 {
        return seq_fallback(source, kind, alpha, beta, cancel);
    }
    let workers = workers as usize;
    let pool = Pool {
        source,
        kind,
        cancel,
        split_depth: split_depth(d, workers as u32),
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        finished: AtomicBool::new(false),
        result: Mutex::new(None),
        leaves: AtomicU64::new(0),
        expanded: AtomicU64::new(1), // the root
        cutoffs: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        retired: AtomicU64::new(0),
        narrowings: AtomicU64::new(0),
    };
    let root = Arc::new(NodeState {
        path: Vec::new(),
        parent: None,
        agg: Mutex::new(Aggregator::new(kind.mode_at(0), d, alpha, beta)),
        window: AtomicWindow::new(alpha, beta),
        done: AtomicBool::new(false),
        published: AtomicBool::new(false),
    });
    pool.push(
        0,
        ParTask {
            node: root,
            path: vec![0],
        },
    );
    let pool = &pool;
    let outcome: Result<(), Cancelled> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| s.spawn(move || pool.worker_loop(w)))
            .collect();
        let mine = pool.worker_loop(0);
        for h in handles {
            match h.join().expect("gt-par worker panicked") {
                Ok(()) => {}
                Err(Cancelled) => return Err(Cancelled),
            }
        }
        mine
    });
    outcome?;
    let value = pool
        .result
        .lock()
        .unwrap()
        .expect("pool finished without a root value");
    Ok(ParStats {
        value,
        leaves_evaluated: pool.leaves.load(Ordering::Relaxed),
        nodes_expanded: pool.expanded.load(Ordering::Relaxed),
        cutoffs: pool.cutoffs.load(Ordering::Relaxed),
        steals: pool.steals.load(Ordering::Relaxed),
        retired: pool.retired.load(Ordering::Relaxed),
        window_narrowings: pool.narrowings.load(Ordering::Relaxed),
        workers: workers as u32,
    })
}

/// Parallel SOLVE over `workers` threads: the work-stealing
/// counterpart of [`seq_solve`](crate::minimax::seq_solve), with an
/// identical root value for every worker count (NOR values are exact
/// under any absorption order).
pub fn par_solve<S: TreeSource>(
    source: &S,
    workers: u32,
    cancel: &AtomicBool,
) -> Result<ParStats, Cancelled> {
    par_evaluate(
        source,
        EvalKind::Nor,
        workers,
        Value::MIN,
        Value::MAX,
        cancel,
    )
}

/// Parallel α-β over `workers` threads from the full window: root
/// value identical to [`seq_alphabeta`](crate::minimax::seq_alphabeta)
/// for every worker count.
pub fn par_alphabeta<S: TreeSource>(
    source: &S,
    workers: u32,
    cancel: &AtomicBool,
) -> Result<ParStats, Cancelled> {
    par_alphabeta_windowed(source, workers, Value::MIN, Value::MAX, true, cancel)
}

/// Parallel α-β from an arbitrary starting window and root player —
/// the entry point the serving layer uses for windowed subtree grants.
/// Fail-soft: a value strictly inside `(alpha, beta)` is exact; a
/// value at or outside a bound is a bound on the same side the
/// sequential search would fail.
pub fn par_alphabeta_windowed<S: TreeSource>(
    source: &S,
    workers: u32,
    alpha: Value,
    beta: Value,
    maximizing: bool,
    cancel: &AtomicBool,
) -> Result<ParStats, Cancelled> {
    if alpha >= beta {
        // An empty window settles without visiting anything.
        return Ok(ParStats {
            value: if maximizing { alpha } else { beta },
            leaves_evaluated: 0,
            nodes_expanded: 0,
            cutoffs: 1,
            steals: 0,
            retired: 0,
            window_narrowings: 0,
            workers: 1,
        });
    }
    par_evaluate(
        source,
        EvalKind::Minmax {
            root_maximizing: maximizing,
        },
        workers,
        alpha,
        beta,
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimax::{seq_alphabeta, seq_solve};
    use crate::spec::GenSpec;

    fn never() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn atomic_window_round_trips_and_narrows_monotonically() {
        let w = AtomicWindow::new(Value::MIN, Value::MAX);
        assert_eq!(w.load(), (Value::MIN, Value::MAX));
        assert!(!w.is_cut());
        assert_eq!(w.narrow(-5, 9), 2);
        assert_eq!(w.load(), (-5, 9));
        // Widening attempts are ignored.
        assert_eq!(w.narrow(-100, 100), 0);
        assert_eq!(w.load(), (-5, 9));
        assert_eq!(w.narrow(3, Value::MAX), 1);
        assert_eq!(w.load(), (3, 9));
        assert_eq!(w.narrow(9, 9), 1); // only α moves: 3 → 9
        assert!(w.is_cut());
    }

    #[test]
    fn atomic_window_out_of_range_bounds_round_outward() {
        let w = AtomicWindow::new(Value::MIN, Value::MAX);
        // Narrowing to astronomically large bounds keeps a sound
        // (possibly wider) window rather than inverting it.
        w.narrow(Value::MIN + 1, Value::MAX - 1);
        let (a, b) = w.load();
        assert!(a <= Value::MIN + 1 && b >= Value::MAX - 1);
        assert!(!w.is_cut());
    }

    #[test]
    fn par_solve_matches_seq_solve_for_every_worker_count() {
        for spec in [
            "crit:d=2,n=8,seed=11",
            "nor:d=3,n=5,seed=4",
            "worst:d=2,n=6",
        ] {
            let g = GenSpec::parse(spec).unwrap();
            let src = g.build().unwrap();
            let want = seq_solve(&src, false).value;
            for workers in [1, 2, 4, 8] {
                let st = par_solve(&src, workers, &never()).unwrap();
                assert_eq!(st.value, want, "{spec} workers={workers}");
            }
        }
    }

    #[test]
    fn par_alphabeta_matches_seq_alphabeta_for_every_worker_count() {
        for spec in [
            "minmax:d=3,n=5,seed=7,lo=-50,hi=50",
            "minmax-best:d=2,n=8,value=13",
            "minmax-worst:d=2,n=7",
            "minmax-corr:d=3,n=4,seed=2",
        ] {
            let g = GenSpec::parse(spec).unwrap();
            let src = g.build().unwrap();
            let want = seq_alphabeta(&src, false).value;
            for workers in [1, 2, 3, 4, 8] {
                let st = par_alphabeta(&src, workers, &never()).unwrap();
                assert_eq!(st.value, want, "{spec} workers={workers}");
            }
        }
    }

    #[test]
    fn windowed_root_inside_window_is_exact() {
        let g = GenSpec::parse("minmax:d=3,n=4,seed=9,lo=-16,hi=16").unwrap();
        let src = g.build().unwrap();
        let truth = seq_alphabeta(&src, false).value;
        let st = par_alphabeta_windowed(&src, 4, truth - 3, truth + 3, true, &never()).unwrap();
        assert_eq!(st.value, truth);
    }

    #[test]
    fn windowed_root_failures_land_on_the_right_side() {
        let g = GenSpec::parse("minmax:d=3,n=4,seed=5,lo=-16,hi=16").unwrap();
        let src = g.build().unwrap();
        let truth = seq_alphabeta(&src, false).value;
        for workers in [2, 4] {
            let lo = par_alphabeta_windowed(&src, workers, truth + 1, truth + 8, true, &never())
                .unwrap();
            assert!(lo.value <= truth + 1, "fail-low bound, workers={workers}");
            let hi = par_alphabeta_windowed(&src, workers, truth - 8, truth - 1, true, &never())
                .unwrap();
            assert!(hi.value >= truth - 1, "fail-high bound, workers={workers}");
        }
    }

    #[test]
    fn degenerate_trees_run_on_the_fallback() {
        // A single leaf and a unary chain cannot split.
        let g = GenSpec::parse("minmax:d=1,n=4,seed=1,lo=-9,hi=9").unwrap();
        let src = g.build().unwrap();
        let st = par_alphabeta(&src, 4, &never()).unwrap();
        assert_eq!(st.value, seq_alphabeta(&src, false).value);
        assert_eq!(st.workers, 1);
        let g = GenSpec::parse("worst:d=2,n=0").unwrap();
        let src = g.build().unwrap();
        let st = par_solve(&src, 4, &never()).unwrap();
        assert_eq!(st.value, seq_solve(&src, false).value);
    }

    #[test]
    fn preset_cancel_flag_aborts_every_worker() {
        let set = AtomicBool::new(true);
        let g = GenSpec::parse("worst:d=2,n=12").unwrap();
        let src = g.build().unwrap();
        assert_eq!(par_solve(&src, 4, &set), Err(Cancelled));
        let g = GenSpec::parse("minmax-worst:d=2,n=12").unwrap();
        let src = g.build().unwrap();
        assert_eq!(par_alphabeta(&src, 4, &set), Err(Cancelled));
    }

    #[test]
    fn big_runs_record_work_and_exercise_the_deques() {
        let g = GenSpec::parse("minmax-worst:d=2,n=12").unwrap();
        let src = g.build().unwrap();
        let st = par_alphabeta(&src, 4, &never()).unwrap();
        assert_eq!(st.value, seq_alphabeta(&src, false).value);
        assert!(st.leaves_evaluated > 0);
        assert_eq!(st.workers, 4);
        // Worst-ordered trees admit no cutoffs, so every published
        // sibling task really runs; with 4 workers chewing one deque
        // the run is overwhelmingly likely to steal, but the value
        // contract above is the hard assertion.
    }

    #[test]
    fn empty_window_settles_without_work() {
        let g = GenSpec::parse("minmax:d=2,n=10,seed=3").unwrap();
        let src = g.build().unwrap();
        let st = par_alphabeta_windowed(&src, 4, 5, 5, true, &never()).unwrap();
        assert_eq!(st.leaves_evaluated, 0);
    }
}
