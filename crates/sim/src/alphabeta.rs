//! MIN/MAX trees: the pruning process of Section 4, with Sequential α-β
//! and Parallel α-β of width `w` as special cases, plus their
//! node-expansion counterparts (Section 5 notes the conversion).
//!
//! The pruning process maintains a *pruned tree* `T̃` (we mark deleted
//! subtrees rather than physically removing them).  A node is *finished*
//! when every leaf of its subtree in `T̃` is evaluated; finished nodes
//! have known values.  The α-bound of `v` is the largest value among
//! finished siblings of MIN-ancestors of `v`; the β-bound is the
//! smallest value among finished siblings of MAX-ancestors.  The pruning
//! rule deletes any unfinished `v` with `α(v) ≥ β(v)`; Theorem 2 shows
//! the root value of `T̃` is invariant under this rule.
//!
//! A general step is: evaluate a set of leaves (all unfinished leaves of
//! `T̃` with pruning number ≤ width), then run pruning and propagation
//! steps — which are free in the model — to a fixpoint.

use crate::metrics::RunStats;
use gt_tree::{Cancelled, LazyTree, NodeId, NodeKind, TreeSource, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// Which cost model a run charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Leaf-evaluation model: work = leaves evaluated; expansion is free.
    LeafEvaluation,
    /// Node-expansion model: work = nodes expanded; expanding a leaf
    /// evaluates it.
    NodeExpansion,
}

/// A resumable simulation of the MIN/MAX pruning process.
pub struct AlphaBetaSim<S: TreeSource> {
    tree: LazyTree<S>,
    finished: Vec<Option<Value>>,
    deleted: Vec<bool>,
    frontier: Vec<NodeId>,
    model: Model,
    /// When set, each step evaluates at most this many frontier entries
    /// (those with the smallest pruning numbers, leftmost on ties).
    processor_cap: Option<u32>,
    /// Pruning events so far: nodes deleted by the `α ≥ β` rule.
    cutoffs: u64,
}

impl<S: TreeSource> AlphaBetaSim<S> {
    /// Set up a simulation in the given cost model.
    pub fn new(source: S, model: Model) -> Self {
        AlphaBetaSim {
            tree: LazyTree::new(source),
            finished: vec![None],
            deleted: vec![false],
            frontier: Vec::new(),
            model,
            processor_cap: None,
            cutoffs: 0,
        }
    }

    /// Limit every step to at most `p` evaluations (smallest pruning
    /// numbers first) — the fixed-processor variant.
    pub fn with_processor_cap(mut self, p: u32) -> Self {
        assert!(p >= 1);
        self.processor_cap = Some(p);
        self
    }

    /// The materialized tree.
    pub fn tree(&self) -> &LazyTree<S> {
        &self.tree
    }

    /// Root value once the run has finished.
    pub fn root_value(&self) -> Option<Value> {
        self.finished[0]
    }

    fn sync_side_tables(&mut self) {
        let n = self.tree.len();
        if self.finished.len() < n {
            self.finished.resize(n, None);
            self.deleted.resize(n, false);
        }
    }

    /// Expand for free (leaf-evaluation model only); structure only, so
    /// leaf values stay un-fetched until the evaluation step.
    fn ensure_expanded(&mut self, v: NodeId) {
        debug_assert_eq!(self.model, Model::LeafEvaluation);
        if !self.tree.is_expanded(v) {
            self.tree.expand_shallow(v);
            self.sync_side_tables();
        }
    }

    /// Is `v` a MAX node?  The root (depth 0) is MAX; levels alternate.
    #[inline]
    pub fn is_max(&self, v: NodeId) -> bool {
        self.tree.depth(v).is_multiple_of(2)
    }

    /// Collect the frontier: unfinished, undeleted leaves (leaf model) or
    /// unexpanded nodes (expansion model) with pruning number ≤ budget.
    /// The pruning number counts unfinished (and undeleted) left-siblings
    /// of ancestors.  When `pns` is provided the *remaining budget* of
    /// each frontier entry is recorded (pruning number = width − it).
    fn collect(&mut self, v: NodeId, budget: i64, pns: &mut Option<Vec<u32>>) {
        debug_assert!(budget >= 0);
        match self.model {
            Model::LeafEvaluation => {
                self.ensure_expanded(v);
                if self.tree.is_leaf(v) {
                    self.frontier.push(v);
                    if let Some(pns) = pns {
                        pns.push(budget as u32);
                    }
                    return;
                }
            }
            Model::NodeExpansion => {
                if !self.tree.is_expanded(v) {
                    self.frontier.push(v);
                    if let Some(pns) = pns {
                        pns.push(budget as u32);
                    }
                    return;
                }
                if self.tree.is_leaf(v) {
                    // Expanded leaves are finished; the parent skips them.
                    unreachable!("descended into a finished leaf");
                }
            }
        }
        let mut unf_seen: i64 = 0;
        for i in 0..self.tree.arity(v) {
            let u = self.tree.child(v, i);
            if self.deleted[u as usize] || self.finished[u as usize].is_some() {
                continue;
            }
            if unf_seen > budget {
                break;
            }
            self.collect(u, budget - unf_seen, pns);
            unf_seen += 1;
        }
    }

    /// One propagation-and-pruning sweep over the live region; returns
    /// whether anything changed.  Called repeatedly to a fixpoint — these
    /// steps are free in the paper's models.
    fn sweep(&mut self, v: NodeId, alpha: Value, beta: Value, maximizing: bool) -> bool {
        if !self.tree.is_expanded(v) || self.tree.is_leaf(v) {
            return false; // nothing known below an unexpanded node / raw leaf
        }
        let mut changed = false;
        // Bound contributed by already-finished children.
        let mut fb: Option<Value> = None;
        let merge = |fb: &mut Option<Value>, x: Value| {
            *fb = Some(match *fb {
                None => x,
                Some(y) if maximizing => y.max(x),
                Some(y) => y.min(x),
            });
        };
        for i in 0..self.tree.arity(v) {
            let u = self.tree.child(v, i);
            if self.deleted[u as usize] {
                continue;
            }
            if let Some(val) = self.finished[u as usize] {
                merge(&mut fb, val);
            }
        }
        let mut any_unfinished = false;
        for i in 0..self.tree.arity(v) {
            let u = self.tree.child(v, i);
            if self.deleted[u as usize] || self.finished[u as usize].is_some() {
                continue;
            }
            let (ca, cb) = if maximizing {
                (alpha.max(fb.unwrap_or(Value::MIN)), beta)
            } else {
                (alpha, beta.min(fb.unwrap_or(Value::MAX)))
            };
            if ca >= cb {
                // Pruning rule: α(u) ≥ β(u).
                self.deleted[u as usize] = true;
                self.cutoffs += 1;
                changed = true;
                continue;
            }
            if self.sweep(u, ca, cb, !maximizing) {
                changed = true;
            }
            if let Some(val) = self.finished[u as usize] {
                merge(&mut fb, val);
            } else {
                any_unfinished = true;
            }
        }
        if !any_unfinished {
            // Every undeleted child is finished, so v is finished; a node
            // can never lose *all* children (deletion needs a finished
            // sibling's bound).
            let val = fb.expect("finished node must retain a child");
            self.finished[v as usize] = Some(val);
            changed = true;
        }
        changed
    }

    fn fixpoint(&mut self) {
        while self.finished[0].is_none() && self.sweep(0, Value::MIN, Value::MAX, true) {}
    }

    /// One basic step at the given width.  Returns the parallel degree,
    /// or `None` when the root is finished.
    pub fn step(&mut self, width: u32, stats: &mut RunStats) -> Option<u32> {
        if self.finished[0].is_some() {
            return None;
        }
        self.frontier.clear();
        if let Some(p) = self.processor_cap {
            let mut pns: Option<Vec<u32>> = Some(Vec::new());
            self.collect(0, i64::from(width), &mut pns);
            let remaining = pns.unwrap();
            if self.frontier.len() as u32 > p {
                let mut order: Vec<usize> = (0..self.frontier.len()).collect();
                order.sort_by_key(|&i| (width - remaining[i], i));
                order.truncate(p as usize);
                order.sort_unstable();
                self.frontier = order.iter().map(|&i| self.frontier[i]).collect();
            }
        } else {
            self.collect(0, i64::from(width), &mut None);
        }
        debug_assert!(!self.frontier.is_empty(), "unfinished root, empty frontier");
        let degree = self.frontier.len() as u32;
        let nodes = std::mem::take(&mut self.frontier);
        for &v in &nodes {
            if let Some(tr) = &mut stats.trace {
                tr.push(self.tree.path_of(v));
            }
            match self.model {
                Model::LeafEvaluation => {
                    let val = self.tree.evaluate_leaf(v);
                    self.finished[v as usize] = Some(val);
                }
                Model::NodeExpansion => match self.tree.expand(v) {
                    NodeKind::Leaf(val) => {
                        self.sync_side_tables();
                        self.finished[v as usize] = Some(val);
                    }
                    NodeKind::Internal(_) => self.sync_side_tables(),
                },
            }
        }
        self.frontier = nodes;
        stats.record_step(degree);
        self.fixpoint();
        stats.cutoffs = self.cutoffs;
        Some(degree)
    }

    /// Collect the next step's frontier *without evaluating it* (leaf
    /// model only): each unfinished leaf (pruning number ≤ `width`) with
    /// its path.  Empty when the root is finished.
    pub fn frontier_paths(&mut self, width: u32) -> Vec<(NodeId, Vec<u32>)> {
        let mut out = Vec::new();
        self.frontier_paths_into(width, &mut out);
        out
    }

    /// [`AlphaBetaSim::frontier_paths`] writing into a caller-owned
    /// buffer so round-driven engines can reuse the outer vector and the
    /// per-entry path buffers across rounds.
    pub fn frontier_paths_into(&mut self, width: u32, out: &mut Vec<(NodeId, Vec<u32>)>) {
        assert_eq!(self.model, Model::LeafEvaluation);
        if self.finished[0].is_some() {
            out.clear();
            return;
        }
        self.frontier.clear();
        self.collect(0, i64::from(width), &mut None);
        let ids = std::mem::take(&mut self.frontier);
        out.truncate(ids.len());
        let reused = out.len();
        for (slot, &id) in out.iter_mut().zip(&ids) {
            slot.0 = id;
            self.tree.path_of_into(id, &mut slot.1);
        }
        for &id in &ids[reused..] {
            let mut p = Vec::new();
            self.tree.path_of_into(id, &mut p);
            out.push((id, p));
        }
        self.frontier = ids;
    }

    /// Complete a step whose leaf values were computed externally, then
    /// run pruning/propagation to a fixpoint.
    pub fn apply_step(&mut self, values: &[(NodeId, Value)], stats: &mut RunStats) {
        assert!(!values.is_empty(), "a step must evaluate at least one leaf");
        for &(id, v) in values {
            self.tree.set_leaf_value(id, v);
            if let Some(tr) = &mut stats.trace {
                tr.push(self.tree.path_of(id));
            }
            self.finished[id as usize] = Some(v);
        }
        stats.record_step(values.len() as u32);
        self.fixpoint();
        stats.cutoffs = self.cutoffs;
        if let Some(v) = self.finished[0] {
            stats.value = v;
            stats.nodes_materialized = self.tree.len() as u64;
        }
    }

    /// Diagnostic: the minimax value of the *current pruned tree* `T̃`
    /// (deleted subtrees excluded, finished nodes at their values,
    /// untouched regions evaluated from the source).  Theorem 2 says
    /// this equals `val_T(r)` at every moment of the run; the test
    /// suite checks it step by step.  `O(tree)` — diagnostics only.
    pub fn pruned_tree_value(&self) -> Value {
        fn minimax_from<S: TreeSource>(s: &S, path: &mut Vec<u32>, maximizing: bool) -> Value {
            let d = s.arity(path);
            if d == 0 {
                return s.leaf_value(path);
            }
            let mut best = if maximizing { Value::MIN } else { Value::MAX };
            for i in 0..d {
                path.push(i);
                let v = minimax_from(s, path, !maximizing);
                path.pop();
                best = if maximizing { best.max(v) } else { best.min(v) };
            }
            best
        }
        fn go<S: TreeSource>(sim: &AlphaBetaSim<S>, v: gt_tree::NodeId) -> Value {
            if let Some(val) = sim.finished[v as usize] {
                return val;
            }
            let maximizing = sim.is_max(v);
            if !sim.tree.is_expanded(v) {
                let mut path = sim.tree.path_of(v);
                return minimax_from(sim.tree.source(), &mut path, maximizing);
            }
            if sim.tree.is_leaf(v) {
                let path = sim.tree.path_of(v);
                return sim.tree.source().leaf_value(&path);
            }
            let mut best = if maximizing { Value::MIN } else { Value::MAX };
            let mut any = false;
            for i in 0..sim.tree.arity(v) {
                let u = sim.tree.child(v, i);
                if sim.deleted[u as usize] {
                    continue;
                }
                any = true;
                let val = go(sim, u);
                best = if maximizing {
                    best.max(val)
                } else {
                    best.min(val)
                };
            }
            debug_assert!(any, "pruning must never delete every child");
            best
        }
        go(self, 0)
    }

    /// Run to completion.
    pub fn run(&mut self, width: u32, record: bool) -> RunStats {
        let never = AtomicBool::new(false);
        self.run_cancellable(width, record, &never)
            .expect("never cancelled")
    }

    /// [`AlphaBetaSim::run`] with cooperative cancellation, sampled
    /// before every basic step.
    pub fn run_cancellable(
        &mut self,
        width: u32,
        record: bool,
        cancel: &AtomicBool,
    ) -> Result<RunStats, Cancelled> {
        let mut stats = RunStats::new(record);
        loop {
            if cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            if self.step(width, &mut stats).is_none() {
                break;
            }
        }
        stats.value = self.finished[0].expect("finished");
        stats.nodes_materialized = self.tree.len() as u64;
        Ok(stats)
    }
}

/// Parallel α-β of width `w` on a MIN/MAX tree, in the leaf-evaluation
/// model.  Width 0 is Sequential α-β.
///
/// ```
/// use gt_sim::parallel_alphabeta;
/// use gt_tree::gen::UniformSource;
/// use gt_tree::minimax::minimax_value;
///
/// let tree = UniformSource::minmax_iid(2, 8, 0, 100, 7);
/// let run = parallel_alphabeta(&tree, 1, false);
/// assert_eq!(run.value, minimax_value(&tree));   // Theorem 2: exact
/// ```
pub fn parallel_alphabeta<S: TreeSource>(source: S, width: u32, record: bool) -> RunStats {
    AlphaBetaSim::new(source, Model::LeafEvaluation).run(width, record)
}

/// [`parallel_alphabeta`] with cooperative cancellation, sampled at
/// every basic step.
pub fn parallel_alphabeta_cancellable<S: TreeSource>(
    source: S,
    width: u32,
    record: bool,
    cancel: &AtomicBool,
) -> Result<RunStats, Cancelled> {
    AlphaBetaSim::new(source, Model::LeafEvaluation).run_cancellable(width, record, cancel)
}

/// Sequential α-β: evaluate the leftmost unfinished leaf of the current
/// pruned tree at each step.
pub fn sequential_alphabeta<S: TreeSource>(source: S, record: bool) -> RunStats {
    parallel_alphabeta(source, 0, record)
}

/// Parallel α-β of width `w` with a fixed processor budget `p`: each
/// step evaluates the `p` unfinished leaves of smallest pruning number
/// among those with pruning number ≤ `w`.
pub fn parallel_alphabeta_capped<S: TreeSource>(
    source: S,
    width: u32,
    processors: u32,
    record: bool,
) -> RunStats {
    AlphaBetaSim::new(source, Model::LeafEvaluation)
        .with_processor_cap(processors)
        .run(width, record)
}

/// N-Parallel α-β of width `w`: the node-expansion version (Section 5).
pub fn n_parallel_alphabeta<S: TreeSource>(source: S, width: u32, record: bool) -> RunStats {
    AlphaBetaSim::new(source, Model::NodeExpansion).run(width, record)
}

/// N-Sequential α-β: expand the leftmost live frontier node each step.
pub fn n_sequential_alphabeta<S: TreeSource>(source: S, record: bool) -> RunStats {
    n_parallel_alphabeta(source, 0, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{minimax_value, seq_alphabeta};
    use gt_tree::ExplicitTree;

    #[test]
    fn single_leaf() {
        let st = parallel_alphabeta(ExplicitTree::leaf(42), 1, false);
        assert_eq!(st.value, 42);
        assert_eq!(st.steps, 1);
    }

    #[test]
    fn cancellable_run_matches_plain_and_honours_the_flag() {
        let s = UniformSource::minmax_iid(2, 8, 0, 100, 5);
        let never = AtomicBool::new(false);
        let a = parallel_alphabeta_cancellable(&s, 1, false, &never).unwrap();
        let b = parallel_alphabeta(&s, 1, false);
        assert_eq!(a, b);

        let set = AtomicBool::new(true);
        assert_eq!(
            parallel_alphabeta_cancellable(&s, 1, false, &set),
            Err(Cancelled)
        );
    }

    #[test]
    fn width0_matches_classical_alphabeta_exactly() {
        for seed in 0..25 {
            for (d, n) in [(2u32, 6u32), (3, 4)] {
                let s = UniformSource::minmax_iid(d, n, 0, 100, seed);
                let sim = sequential_alphabeta(&s, true);
                let re = seq_alphabeta(&s, true);
                assert_eq!(sim.value, re.value, "d={d} n={n} seed={seed}");
                assert_eq!(
                    sim.total_work, re.leaves_evaluated,
                    "leaf count d={d} n={n} seed={seed}"
                );
                assert_eq!(
                    sim.trace.unwrap(),
                    re.leaf_paths.unwrap(),
                    "order d={d} n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn parallel_value_matches_minimax() {
        for seed in 0..15 {
            let s = UniformSource::minmax_iid(2, 6, -50, 50, seed);
            let truth = minimax_value(&s);
            for w in 0..4 {
                assert_eq!(
                    parallel_alphabeta(&s, w, false).value,
                    truth,
                    "w={w} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn expansion_model_value_matches_minimax() {
        for seed in 0..15 {
            let s = UniformSource::minmax_iid(2, 5, 0, 20, seed);
            let truth = minimax_value(&s);
            for w in 0..3 {
                assert_eq!(
                    n_parallel_alphabeta(&s, w, false).value,
                    truth,
                    "w={w} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn width1_is_never_slower_in_steps() {
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(3, 4, 0, 1000, seed);
            let seq = sequential_alphabeta(&s, false);
            let par = parallel_alphabeta(&s, 1, false);
            assert!(par.steps <= seq.steps, "seed {seed}");
        }
    }

    #[test]
    fn best_ordered_sequential_meets_knuth_moore() {
        for (d, n) in [(2u32, 6u32), (3, 4)] {
            let s = UniformSource::minmax_best_ordered(d, n, 7);
            let st = sequential_alphabeta(&s, false);
            let expect = (d as u64).pow(n / 2) + (d as u64).pow(n.div_ceil(2)) - 1;
            assert_eq!(st.total_work, expect, "d={d} n={n}");
        }
    }

    #[test]
    fn worst_ordered_sequential_evaluates_everything() {
        let (d, n) = (2u32, 6u32);
        let s = UniformSource::minmax_worst_ordered(d, n);
        let st = sequential_alphabeta(&s, false);
        assert_eq!(st.total_work, (d as u64).pow(n));
    }

    #[test]
    fn duplicate_leaf_values_are_handled() {
        // Equal values trigger the α ≥ β rule aggressively; the value
        // must still be exact.
        for seed in 0..10 {
            let s = UniformSource::minmax_iid(2, 6, 0, 3, seed);
            let truth = minimax_value(&s);
            for w in 0..3 {
                assert_eq!(parallel_alphabeta(&s, w, false).value, truth);
            }
        }
    }

    #[test]
    fn deep_cutoff_is_realized() {
        // Tree engineered so only a *deep* cutoff (α from the
        // great-grandparent level) prunes the last leaf:
        // MAX( MIN( 5 ), MIN( MAX( MIN(4, X) , ...)) ) — construct
        // directly:
        let t = ExplicitTree::internal(vec![
            ExplicitTree::internal(vec![ExplicitTree::leaf(5)]),
            ExplicitTree::internal(vec![ExplicitTree::internal(vec![
                ExplicitTree::internal(vec![ExplicitTree::leaf(4), ExplicitTree::leaf(100)]),
                ExplicitTree::leaf(9),
            ])]),
        ]);
        let sim = sequential_alphabeta(&t, true);
        let re = seq_alphabeta(&t, true);
        assert_eq!(sim.value, re.value);
        assert_eq!(sim.trace.unwrap(), re.leaf_paths.unwrap());
        // The leaf value 100 must never be evaluated: after MIN(5)=5 at
        // the root's first child, α=5 at every MAX level below; the MIN
        // node that saw 4 has β=4 ≤ α.
        assert_eq!(sim.total_work, re.leaves_evaluated);
        assert!(sim.total_work < t.leaf_count());
    }

    #[test]
    fn non_uniform_minmax_tree() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(3),
            ExplicitTree::internal(vec![
                ExplicitTree::leaf(7),
                ExplicitTree::internal(vec![ExplicitTree::leaf(2), ExplicitTree::leaf(8)]),
            ]),
        ]);
        let truth = minimax_value(&t);
        for w in 0..3 {
            assert_eq!(parallel_alphabeta(&t, w, false).value, truth, "w={w}");
            assert_eq!(n_parallel_alphabeta(&t, w, false).value, truth, "nw={w}");
        }
    }

    #[test]
    fn capped_one_processor_replays_sequential() {
        for seed in 0..8 {
            let s = UniformSource::minmax_iid(2, 6, 0, 100, seed);
            let capped = parallel_alphabeta_capped(&s, 2, 1, true);
            let seq = sequential_alphabeta(&s, true);
            assert_eq!(capped.trace.unwrap(), seq.trace.unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn capped_large_budget_equals_uncapped() {
        for seed in 0..8 {
            let s = UniformSource::minmax_iid(2, 6, 0, 100, seed);
            let capped = parallel_alphabeta_capped(&s, 1, 10_000, false);
            let plain = parallel_alphabeta(&s, 1, false);
            assert_eq!(capped.steps, plain.steps, "seed {seed}");
            assert_eq!(capped.value, plain.value);
        }
    }

    #[test]
    fn capped_respects_budget_and_stays_exact() {
        for seed in 0..8 {
            let s = UniformSource::minmax_iid(3, 4, 0, 1000, seed);
            for p in [2u32, 3] {
                let st = parallel_alphabeta_capped(&s, 2, p, false);
                assert_eq!(st.value, minimax_value(&s), "p={p} seed={seed}");
                assert!(st.processors_used <= p);
            }
        }
    }

    #[test]
    fn theorem2_invariant_holds_after_every_step() {
        // val_T̃(r) = val_T(r) at every point of the pruning process —
        // the statement of Theorem 2, checked step by step.
        for seed in 0..8 {
            for w in [0u32, 1, 2] {
                let s = UniformSource::minmax_iid(2, 5, 0, 20, seed);
                let truth = minimax_value(&s);
                let mut sim = AlphaBetaSim::new(&s, Model::LeafEvaluation);
                let mut stats = crate::RunStats::new(false);
                assert_eq!(sim.pruned_tree_value(), truth, "before any step");
                let mut guard = 0;
                while sim.step(w, &mut stats).is_some() {
                    assert_eq!(
                        sim.pruned_tree_value(),
                        truth,
                        "invariant broken mid-run (w={w} seed={seed})"
                    );
                    guard += 1;
                    assert!(guard < 10_000);
                }
                assert_eq!(sim.root_value(), Some(truth));
            }
        }
    }

    #[test]
    fn theorem2_invariant_holds_in_expansion_model() {
        for seed in 0..6 {
            let s = UniformSource::minmax_iid(3, 3, -5, 5, seed);
            let truth = minimax_value(&s);
            let mut sim = AlphaBetaSim::new(&s, Model::NodeExpansion);
            let mut stats = crate::RunStats::new(false);
            while sim.step(1, &mut stats).is_some() {
                assert_eq!(sim.pruned_tree_value(), truth, "seed {seed}");
            }
        }
    }

    #[test]
    fn n_sequential_alphabeta_counts_expansions() {
        let s = UniformSource::minmax_iid(2, 4, 0, 100, 5);
        let st = n_sequential_alphabeta(&s, false);
        // Expansion count is at least leaves evaluated + internal spine.
        let leaves = seq_alphabeta(&s, false).leaves_evaluated;
        assert!(st.total_work >= leaves);
        assert_eq!(st.value, minimax_value(&s));
    }
}
