//! # gt-sim — step-synchronous simulators for the paper's two cost models
//!
//! The paper analyses algorithms in two abstract models:
//!
//! * the **leaf-evaluation model** (Sections 2–4): the unit of work is
//!   evaluating a leaf; a basic step evaluates a *set* of leaves
//!   simultaneously; the running time is the number of steps and the
//!   number of processors is the largest set evaluated in one step;
//! * the **node-expansion model** (Section 5): the unit of work is
//!   expanding a node of an implicitly-given tree.
//!
//! This crate implements every algorithm the paper defines, in both
//! models, as *exact* lock-step simulations that report the paper's own
//! metrics — `S(T)`, `P(T)`, the per-step parallel degree histogram
//! `t_k(T)`, the processor count, and the total work:
//!
//! | paper | here |
//! |---|---|
//! | Sequential SOLVE | [`sequential_solve`] (= width 0) |
//! | Team SOLVE with p processors | [`team_solve`] |
//! | Parallel SOLVE of width w | [`parallel_solve`] |
//! | Sequential α-β | [`sequential_alphabeta`] (= width 0) |
//! | Parallel α-β of width w | [`parallel_alphabeta`] |
//! | N-Sequential SOLVE | [`n_sequential_solve`] |
//! | N-Parallel SOLVE of width w | [`n_parallel_solve`] |
//! | R-Sequential / R-Parallel SOLVE | [`randomized::r_parallel_solve`] |
//! | R-Sequential / R-Parallel α-β | [`randomized::r_parallel_alphabeta`] |
//!
//! The simulators run on any [`gt_tree::TreeSource`]; trees materialize
//! lazily, so only the region an algorithm actually touches costs memory.

pub mod alphabeta;
pub mod codes;
pub mod expansion;
pub mod metrics;
pub mod nor;
pub mod randomized;
pub mod trace;

pub use alphabeta::{
    n_parallel_alphabeta, n_sequential_alphabeta, parallel_alphabeta,
    parallel_alphabeta_cancellable, parallel_alphabeta_capped, sequential_alphabeta, AlphaBetaSim,
};
pub use expansion::{n_parallel_solve, n_sequential_solve, ExpansionSim};
pub use metrics::RunStats;
pub use nor::{
    parallel_solve, parallel_solve_cancellable, parallel_solve_capped, sequential_solve,
    team_solve, NorSim,
};
