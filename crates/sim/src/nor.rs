//! NOR-tree algorithms in the leaf-evaluation model: Sequential SOLVE,
//! Team SOLVE, and Parallel SOLVE of width `w` (Section 2).
//!
//! The central notion is the **pruning number** of a live leaf `v`: the
//! total number of live left-siblings of the ancestors of `v`.  Parallel
//! SOLVE of width `w` evaluates, at every step, all live leaves with
//! pruning number at most `w`; width 0 is exactly Sequential SOLVE.
//!
//! The simulator keeps the classical NOR bookkeeping: a node is
//! *determined* `0` as soon as one child is determined `1`, and
//! determined `1` once all children are determined `0`; a node is *dead*
//! when any ancestor (including itself) is determined.  The frontier of
//! a step is found by a depth-first walk from the root that carries the
//! remaining pruning-number budget and therefore visits only the
//! `O(width·height)`-sized region the step can touch.

use crate::metrics::RunStats;
use gt_tree::{Cancelled, LazyTree, NodeId, TreeSource};
use std::sync::atomic::{AtomicBool, Ordering};

/// A resumable simulation of (Team/Parallel) SOLVE on a NOR tree.
///
/// Most callers want the one-shot helpers [`parallel_solve`],
/// [`team_solve`] and [`sequential_solve`]; the struct itself is public
/// so tests and the experiment harness can drive runs step by step and
/// inspect intermediate state.
pub struct NorSim<S: TreeSource> {
    tree: LazyTree<S>,
    /// `None` = undetermined; `Some(b)` = value determined as `b`.
    determined: Vec<Option<bool>>,
    /// For expanded internal nodes: children not yet determined.
    undet_children: Vec<u32>,
    /// Scratch buffer reused across steps.
    frontier: Vec<NodeId>,
    /// Pruning events so far: `1`-children that short-circuited a parent
    /// while live siblings remained (their subtrees are abandoned).
    cutoffs: u64,
}

/// How a step selects its frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Parallel SOLVE: all live leaves with pruning number ≤ width.
    Width(u32),
    /// Team SOLVE: the leftmost `p` live leaves.
    Team(u32),
    /// Parallel SOLVE with a processor budget: of the live leaves with
    /// pruning number ≤ `width`, evaluate the `processors` with the
    /// smallest pruning numbers (leftmost first on ties) — the
    /// leaf-model analogue of Section 7's fixed-processor remark.
    Capped {
        /// Pruning-number width `w`.
        width: u32,
        /// Processor budget `p ≥ 1`.
        processors: u32,
    },
}

impl<S: TreeSource> NorSim<S> {
    /// Set up a simulation over `source`.
    pub fn new(source: S) -> Self {
        NorSim {
            tree: LazyTree::new(source),
            determined: vec![None],
            undet_children: vec![0],
            frontier: Vec::new(),
            cutoffs: 0,
        }
    }

    /// The materialized tree.
    pub fn tree(&self) -> &LazyTree<S> {
        &self.tree
    }

    /// Root value, once the run has finished.
    pub fn root_value(&self) -> Option<bool> {
        self.determined[0]
    }

    /// Is the value of `v` determined (directly, not via ancestors)?
    pub fn is_determined(&self, v: NodeId) -> Option<bool> {
        self.determined[v as usize]
    }

    /// Is `v` live — i.e. no ancestor (including `v` itself) determined?
    pub fn is_live_node(&self, v: NodeId) -> bool {
        let mut cur = Some(v);
        while let Some(u) = cur {
            if self.determined[u as usize].is_some() {
                return false;
            }
            cur = self.tree.parent(u);
        }
        true
    }

    fn sync_side_tables(&mut self) {
        let n = self.tree.len();
        if self.determined.len() < n {
            self.determined.resize(n, None);
            self.undet_children.resize(n, 0);
        }
    }

    /// Expand a node "for free" (leaf-evaluation model: the whole tree is
    /// given; our lazy materialization is an implementation detail).
    /// Only structure is fetched — leaf values are charged at evaluation.
    fn ensure_expanded(&mut self, v: NodeId) {
        if !self.tree.is_expanded(v) {
            let is_leaf = self.tree.expand_shallow(v);
            self.sync_side_tables();
            if !is_leaf {
                self.undet_children[v as usize] = self.tree.arity(v);
            }
        }
    }

    /// Determine node `v` to boolean `val` and propagate upward: a `1`
    /// child determines its parent `0`; the last `0` child determines the
    /// parent `1`.
    fn determine(&mut self, v: NodeId, val: bool) {
        if self.determined[v as usize].is_some() {
            return;
        }
        self.determined[v as usize] = Some(val);
        if let Some(p) = self.tree.parent(v) {
            if self.determined[p as usize].is_some() {
                return;
            }
            if val {
                if self.undet_children[p as usize] > 1 {
                    self.cutoffs += 1;
                }
                self.determine(p, false);
            } else {
                self.undet_children[p as usize] -= 1;
                if self.undet_children[p as usize] == 0 {
                    self.determine(p, true);
                }
            }
        }
    }

    /// Collect the frontier for one step under `policy` into
    /// `self.frontier` (left-to-right order).
    fn collect_frontier(&mut self, policy: Policy) {
        self.frontier.clear();
        match policy {
            Policy::Width(w) => {
                self.collect_width(0, w as i64, &mut None);
            }
            Policy::Team(p) => {
                debug_assert!(p >= 1);
                self.collect_team(0, p);
            }
            Policy::Capped { width, processors } => {
                debug_assert!(processors >= 1);
                // Gather (pruning number, position) for every candidate,
                // then keep the `processors` smallest pruning numbers
                // (stable, so leftmost wins ties).
                let mut pns: Option<Vec<u32>> = Some(Vec::new());
                self.collect_width(0, width as i64, &mut pns);
                let remaining = pns.unwrap();
                if self.frontier.len() as u32 > processors {
                    let mut order: Vec<usize> = (0..self.frontier.len()).collect();
                    // Recorded values are *remaining* budgets; pruning
                    // number = width − remaining.
                    order.sort_by_key(|&i| (width - remaining[i], i));
                    order.truncate(processors as usize);
                    order.sort_unstable(); // restore left-to-right order
                    self.frontier = order.iter().map(|&i| self.frontier[i]).collect();
                }
            }
        }
    }

    /// DFS with remaining pruning-number budget; a child with `k` live
    /// left-siblings spends `k` budget.  When `pns` is provided, the
    /// pruning number of each collected leaf is recorded alongside.
    fn collect_width(&mut self, v: NodeId, budget: i64, pns: &mut Option<Vec<u32>>) {
        debug_assert!(budget >= 0);
        self.ensure_expanded(v);
        if self.tree.is_leaf(v) {
            self.frontier.push(v);
            if let Some(pns) = pns {
                // budget = width − pruning number; recover it from the
                // caller-tracked remaining budget via the current width.
                pns.push(budget as u32);
            }
            return;
        }
        let mut live_seen: i64 = 0;
        for i in 0..self.tree.arity(v) {
            let u = self.tree.child(v, i);
            if self.determined[u as usize].is_some() {
                continue;
            }
            if live_seen > budget {
                break;
            }
            self.collect_width(u, budget - live_seen, pns);
            live_seen += 1;
        }
    }

    /// DFS collecting the leftmost `p` live leaves.
    fn collect_team(&mut self, v: NodeId, p: u32) {
        if self.frontier.len() as u32 >= p {
            return;
        }
        self.ensure_expanded(v);
        if self.tree.is_leaf(v) {
            self.frontier.push(v);
            return;
        }
        for i in 0..self.tree.arity(v) {
            if self.frontier.len() as u32 >= p {
                return;
            }
            let u = self.tree.child(v, i);
            if self.determined[u as usize].is_some() {
                continue;
            }
            self.collect_team(u, p);
        }
    }

    /// Execute one basic step; returns the parallel degree, or `None` if
    /// the root is already determined.
    pub fn step(&mut self, policy: Policy, stats: &mut RunStats) -> Option<u32> {
        if self.determined[0].is_some() {
            return None;
        }
        self.collect_frontier(policy);
        debug_assert!(
            !self.frontier.is_empty(),
            "undetermined root but empty frontier"
        );
        let degree = self.frontier.len() as u32;
        let leaves = std::mem::take(&mut self.frontier);
        for &leaf in &leaves {
            let val = self.tree.evaluate_leaf(leaf);
            if let Some(tr) = &mut stats.trace {
                tr.push(self.tree.path_of(leaf));
            }
            self.determine(leaf, val != 0);
        }
        self.frontier = leaves; // give the buffer back
        stats.record_step(degree);
        stats.cutoffs = self.cutoffs;
        Some(degree)
    }

    /// Collect the next step's frontier *without evaluating it*: each
    /// live leaf (under `policy`) with its root-to-leaf path.  Returns an
    /// empty vector when the root is determined.  Used by the threaded
    /// engines, which evaluate the returned paths in parallel against the
    /// source and then call [`NorSim::apply_step`].
    pub fn frontier_paths(&mut self, policy: Policy) -> Vec<(NodeId, Vec<u32>)> {
        let mut out = Vec::new();
        self.frontier_paths_into(policy, &mut out);
        out
    }

    /// [`NorSim::frontier_paths`] writing into a caller-owned buffer so
    /// round-driven engines can reuse the outer vector *and* the
    /// per-entry path buffers across rounds instead of reallocating
    /// every step.
    pub fn frontier_paths_into(&mut self, policy: Policy, out: &mut Vec<(NodeId, Vec<u32>)>) {
        if self.determined[0].is_some() {
            out.clear();
            return;
        }
        self.collect_frontier(policy);
        let ids = std::mem::take(&mut self.frontier);
        out.truncate(ids.len());
        let reused = out.len();
        for (slot, &id) in out.iter_mut().zip(&ids) {
            slot.0 = id;
            self.tree.path_of_into(id, &mut slot.1);
        }
        for &id in &ids[reused..] {
            let mut p = Vec::new();
            self.tree.path_of_into(id, &mut p);
            out.push((id, p));
        }
        self.frontier = ids;
    }

    /// Complete a step whose leaf values were computed externally.
    pub fn apply_step(&mut self, values: &[(NodeId, i64)], stats: &mut RunStats) {
        assert!(!values.is_empty(), "a step must evaluate at least one leaf");
        for &(id, v) in values {
            self.tree.set_leaf_value(id, v);
            if let Some(tr) = &mut stats.trace {
                tr.push(self.tree.path_of(id));
            }
            self.determine(id, v != 0);
        }
        stats.record_step(values.len() as u32);
        stats.cutoffs = self.cutoffs;
        if self.determined[0].is_some() {
            stats.value = i64::from(self.determined[0].unwrap());
            stats.nodes_materialized = self.tree.len() as u64;
        }
    }

    /// Run to completion under `policy`.
    pub fn run(&mut self, policy: Policy, record: bool) -> RunStats {
        let never = AtomicBool::new(false);
        self.run_cancellable(policy, record, &never)
            .expect("never cancelled")
    }

    /// [`NorSim::run`] with cooperative cancellation: the flag is
    /// sampled before every basic step (steps touch at most
    /// `O(width·height)` nodes, so the reaction latency is one step).
    pub fn run_cancellable(
        &mut self,
        policy: Policy,
        record: bool,
        cancel: &AtomicBool,
    ) -> Result<RunStats, Cancelled> {
        let mut stats = RunStats::new(record);
        loop {
            if cancel.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            if self.step(policy, &mut stats).is_none() {
                break;
            }
        }
        stats.value = i64::from(self.determined[0].expect("run finished"));
        stats.nodes_materialized = self.tree.len() as u64;
        Ok(stats)
    }
}

/// Parallel SOLVE of width `w` on a NOR tree (Section 2).  Width 0 is
/// Sequential SOLVE.
///
/// ```
/// use gt_sim::{parallel_solve, sequential_solve};
/// use gt_tree::gen::UniformSource;
///
/// let tree = UniformSource::nor_iid(2, 10, 0.5, 42);
/// let seq = sequential_solve(&tree, false);
/// let par = parallel_solve(&tree, 1, false);
/// assert_eq!(par.value, seq.value);
/// assert!(par.steps <= seq.steps);          // Theorem 1's direction
/// assert!(par.processors_used <= 11);       // n + 1 processors
/// ```
pub fn parallel_solve<S: TreeSource>(source: S, width: u32, record: bool) -> RunStats {
    NorSim::new(source).run(Policy::Width(width), record)
}

/// [`parallel_solve`] with cooperative cancellation, sampled at every
/// basic step.
pub fn parallel_solve_cancellable<S: TreeSource>(
    source: S,
    width: u32,
    record: bool,
    cancel: &AtomicBool,
) -> Result<RunStats, Cancelled> {
    NorSim::new(source).run_cancellable(Policy::Width(width), record, cancel)
}

/// Team SOLVE with `p ≥ 1` processors: evaluate the leftmost `p` live
/// leaves each step.
pub fn team_solve<S: TreeSource>(source: S, p: u32, record: bool) -> RunStats {
    assert!(p >= 1, "team needs at least one processor");
    NorSim::new(source).run(Policy::Team(p), record)
}

/// Sequential SOLVE: the left-to-right algorithm (one leaf per step).
pub fn sequential_solve<S: TreeSource>(source: S, record: bool) -> RunStats {
    parallel_solve(source, 0, record)
}

/// Parallel SOLVE of width `w` with a fixed processor budget `p`: each
/// step evaluates the `p` live leaves of smallest pruning number among
/// those with pruning number ≤ `w` (the leaf-model analogue of the
/// paper's fixed-processor remark in Section 7).
pub fn parallel_solve_capped<S: TreeSource>(
    source: S,
    width: u32,
    processors: u32,
    record: bool,
) -> RunStats {
    NorSim::new(source).run(Policy::Capped { width, processors }, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{nor_value, seq_solve};
    use gt_tree::ExplicitTree;

    fn leaf(v: i64) -> ExplicitTree {
        ExplicitTree::leaf(v)
    }
    fn node(c: Vec<ExplicitTree>) -> ExplicitTree {
        ExplicitTree::internal(c)
    }

    #[test]
    fn single_leaf_tree() {
        let st = parallel_solve(leaf(1), 1, true);
        assert_eq!(st.value, 1);
        assert_eq!(st.steps, 1);
        assert_eq!(st.total_work, 1);
        assert_eq!(st.processors_used, 1);
        assert_eq!(st.trace.unwrap(), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn width0_equals_sequential_reference_exactly() {
        for seed in 0..20 {
            let s = UniformSource::nor_iid(2, 7, 0.5, seed);
            let sim = sequential_solve(&s, true);
            let re = seq_solve(&s, true);
            assert_eq!(sim.value, re.value, "seed {seed}");
            assert_eq!(sim.total_work, re.leaves_evaluated);
            assert_eq!(sim.steps, re.leaves_evaluated);
            assert_eq!(sim.trace.unwrap(), re.leaf_paths.unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn width1_value_matches_ground_truth() {
        for seed in 0..20 {
            for d in [2u32, 3] {
                let s = UniformSource::nor_iid(d, 5, 0.5, seed);
                assert_eq!(parallel_solve(&s, 1, false).value, nor_value(&s));
            }
        }
    }

    #[test]
    fn width1_uses_at_most_height_plus_one_processors_on_uniform() {
        // Theorem 1: the number of processors used by width 1 on B(d,n)
        // is n + 1.
        for seed in 0..10 {
            for (d, n) in [(2u32, 8u32), (3, 5)] {
                let s = UniformSource::nor_iid(d, n, 0.5, seed);
                let st = parallel_solve(&s, 1, false);
                assert!(
                    st.processors_used <= n + 1,
                    "d={d} n={n} seed={seed}: {} > n+1",
                    st.processors_used
                );
            }
        }
    }

    #[test]
    fn width1_is_never_slower_than_sequential() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 8, 0.6, seed);
            let seq = sequential_solve(&s, false);
            let par = parallel_solve(&s, 1, false);
            assert!(par.steps <= seq.steps, "seed {seed}");
        }
    }

    #[test]
    fn wider_is_weakly_faster_in_steps() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let mut prev = u64::MAX;
            for w in 0..4 {
                let st = parallel_solve(&s, w, false);
                assert!(st.steps <= prev, "width {w} slower (seed {seed})");
                prev = st.steps;
            }
        }
    }

    #[test]
    fn frontier_on_worst_case_is_full_width() {
        // On the worst-case tree nothing dies until subtrees complete, so
        // width-1 runs at high average degree.
        let s = UniformSource::nor_worst_case(2, 10);
        let st = parallel_solve(&s, 1, false);
        assert_eq!(st.value, 1);
        assert_eq!(st.total_work, 1 << 10); // evaluates everything
        assert!(st.processors_used > 1);
    }

    #[test]
    fn team_solve_with_one_processor_is_sequential() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 7, 0.5, seed);
            let a = team_solve(&s, 1, true);
            let b = sequential_solve(&s, true);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.trace.unwrap(), b.trace.unwrap());
        }
    }

    #[test]
    fn team_solve_evaluates_prefix_of_live_leaves() {
        let t = node(vec![
            node(vec![leaf(0), leaf(0)]),
            node(vec![leaf(1), leaf(0)]),
        ]);
        let st = team_solve(&t, 2, true);
        assert_eq!(st.value, nor_value(&t));
        let tr = st.trace.unwrap();
        // First step takes the two leftmost leaves.
        assert_eq!(&tr[..2], &[vec![0, 0], vec![0, 1]]);
    }

    #[test]
    fn team_speedup_capped_by_p() {
        for seed in 0..5 {
            let s = UniformSource::nor_iid(2, 10, 0.5, seed);
            let seqw = sequential_solve(&s, false).total_work;
            for p in [2u32, 4, 8] {
                let st = team_solve(&s, p, false);
                // Steps can't beat work/p.
                assert!(st.steps >= seqw.div_ceil(p as u64), "p={p} seed={seed}");
            }
        }
    }

    #[test]
    fn capped_with_large_budget_equals_uncapped() {
        for seed in 0..8 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let capped = parallel_solve_capped(&s, 1, 1000, true);
            let plain = parallel_solve(&s, 1, true);
            assert_eq!(capped.steps, plain.steps, "seed {seed}");
            assert_eq!(capped.trace.unwrap(), plain.trace.unwrap());
        }
    }

    #[test]
    fn capped_with_one_processor_is_sequential() {
        // p = 1 picks the unique pruning-number-0 leaf — the leftmost
        // live leaf — i.e. Sequential SOLVE, leaf for leaf.
        for seed in 0..8 {
            for w in [1u32, 3] {
                let s = UniformSource::nor_iid(2, 7, 0.5, seed);
                let capped = parallel_solve_capped(&s, w, 1, true);
                let seq = sequential_solve(&s, true);
                assert_eq!(
                    capped.trace.unwrap(),
                    seq.trace.unwrap(),
                    "w={w} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn capped_respects_the_budget_and_stays_correct() {
        for seed in 0..8 {
            let s = UniformSource::nor_iid(3, 5, 0.5, seed);
            for p in [2u32, 3, 5] {
                let st = parallel_solve_capped(&s, 2, p, false);
                assert_eq!(st.value, nor_value(&s), "p={p} seed={seed}");
                assert!(
                    st.processors_used <= p,
                    "p={p}: used {}",
                    st.processors_used
                );
            }
        }
    }

    #[test]
    fn capped_steps_shrink_with_more_processors() {
        let s = UniformSource::nor_worst_case(2, 10);
        let mut prev = u64::MAX;
        for p in [1u32, 2, 4, 8] {
            let st = parallel_solve_capped(&s, 3, p, false);
            assert!(st.steps <= prev, "p={p} slower");
            prev = st.steps;
        }
    }

    #[test]
    fn cancellable_run_matches_plain_and_honours_the_flag() {
        let s = UniformSource::nor_iid(2, 8, 0.5, 3);
        let never = AtomicBool::new(false);
        let a = parallel_solve_cancellable(&s, 2, true, &never).unwrap();
        let b = parallel_solve(&s, 2, true);
        assert_eq!(a.value, b.value);
        assert_eq!(a.trace.unwrap(), b.trace.unwrap());

        let set = AtomicBool::new(true);
        assert_eq!(
            parallel_solve_cancellable(&s, 2, false, &set),
            Err(Cancelled)
        );
    }

    #[test]
    fn degenerate_unary_chain() {
        let t = node(vec![node(vec![leaf(1)])]);
        // NOR(NOR(1)) = NOR(0) = 1.
        let st = parallel_solve(&t, 3, false);
        assert_eq!(st.value, 1);
        assert_eq!(st.total_work, 1);
    }

    #[test]
    fn non_uniform_tree_is_handled() {
        let t = node(vec![
            leaf(0),
            node(vec![leaf(0), node(vec![leaf(0), leaf(1)]), leaf(1)]),
            leaf(1),
        ]);
        for w in 0..4 {
            assert_eq!(parallel_solve(&t, w, false).value, nor_value(&t), "w={w}");
        }
    }

    #[test]
    fn trace_length_matches_total_work() {
        let s = UniformSource::nor_iid(3, 4, 0.5, 9);
        let st = parallel_solve(&s, 2, true);
        assert_eq!(st.trace.unwrap().len() as u64, st.total_work);
    }

    #[test]
    fn pruning_number_zero_leaf_always_included() {
        // In every step the leftmost live leaf (pruning number 0) is
        // evaluated: the first trace entry of each step is the leftmost.
        let s = UniformSource::nor_iid(2, 6, 0.5, 4);
        let st = parallel_solve(&s, 1, true);
        // Reconstruct step boundaries from degree_counts is awkward;
        // instead check the global count: steps ≥ trace entries / (n+1).
        assert!(st.steps >= st.total_work / 7);
    }
}
