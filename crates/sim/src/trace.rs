//! Step profiling: capture the per-step parallel-degree series of a
//! run, so the *shape* of an execution (ramp-up, plateau, tail) can be
//! inspected — this is how the paper's "steps of small parallel degree
//! are rare" intuition looks in practice.

use crate::alphabeta::Model;
use crate::metrics::RunStats;
use crate::nor::Policy;
use crate::{AlphaBetaSim, NorSim};
use gt_tree::TreeSource;

/// The degree of every step, in order, plus the run's stats.
#[derive(Debug, Clone)]
pub struct StepProfile {
    /// Parallel degree per step.
    pub degrees: Vec<u32>,
    /// Aggregate statistics.
    pub stats: RunStats,
}

impl StepProfile {
    /// Fraction of steps with parallel degree ≥ `k`.
    pub fn fraction_at_least(&self, k: u32) -> f64 {
        if self.degrees.is_empty() {
            return 0.0;
        }
        self.degrees.iter().filter(|&&d| d >= k).count() as f64 / self.degrees.len() as f64
    }

    /// Fraction of the *total work* done in steps of degree ≥ `k` —
    /// Proposition 4's argument is exactly that this is large.
    pub fn work_fraction_at_least(&self, k: u32) -> f64 {
        let total: u64 = self.degrees.iter().map(|&d| u64::from(d)).sum();
        if total == 0 {
            return 0.0;
        }
        let big: u64 = self
            .degrees
            .iter()
            .filter(|&&d| d >= k)
            .map(|&d| u64::from(d))
            .sum();
        big as f64 / total as f64
    }

    /// Bucket the degree series into `buckets` equal time slices
    /// (averaging within each) — handy for sparkline rendering of long
    /// runs.
    pub fn bucketed(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0);
        if self.degrees.is_empty() {
            return vec![0; buckets];
        }
        let n = self.degrees.len();
        (0..buckets)
            .map(|b| {
                let lo = b * n / buckets;
                let hi = (((b + 1) * n) / buckets).max(lo + 1).min(n);
                let sum: u64 = self.degrees[lo..hi].iter().map(|&d| u64::from(d)).sum();
                sum / (hi - lo) as u64
            })
            .collect()
    }
}

/// Profile a width-`w` Parallel SOLVE run.
pub fn profile_solve<S: TreeSource>(source: S, width: u32) -> StepProfile {
    let mut sim = NorSim::new(source);
    let mut stats = RunStats::new(false);
    let mut degrees = Vec::new();
    while let Some(k) = sim.step(Policy::Width(width), &mut stats) {
        degrees.push(k);
    }
    stats.value = i64::from(sim.root_value().expect("finished"));
    StepProfile { degrees, stats }
}

/// Profile a width-`w` Parallel α-β run.
pub fn profile_alphabeta<S: TreeSource>(source: S, width: u32) -> StepProfile {
    let mut sim = AlphaBetaSim::new(source, Model::LeafEvaluation);
    let mut stats = RunStats::new(false);
    let mut degrees = Vec::new();
    while let Some(k) = sim.step(width, &mut stats) {
        degrees.push(k);
    }
    stats.value = sim.root_value().expect("finished");
    StepProfile { degrees, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{minimax_value, nor_value};

    #[test]
    fn profile_agrees_with_plain_run() {
        let src = UniformSource::nor_iid(2, 8, 0.5, 3);
        let p = profile_solve(&src, 1);
        let plain = crate::parallel_solve(&src, 1, false);
        assert_eq!(p.stats.steps, plain.steps);
        assert_eq!(p.stats.value, nor_value(&src));
        assert_eq!(p.degrees.len() as u64, plain.steps);
        let sum: u64 = p.degrees.iter().map(|&d| u64::from(d)).sum();
        assert_eq!(sum, plain.total_work);
    }

    #[test]
    fn alphabeta_profile_agrees() {
        let src = UniformSource::minmax_iid(2, 6, 0, 100, 5);
        let p = profile_alphabeta(&src, 1);
        assert_eq!(p.stats.value, minimax_value(&src));
        assert!(!p.degrees.is_empty());
    }

    #[test]
    fn fractions_are_sane() {
        let src = UniformSource::nor_worst_case(2, 10);
        let p = profile_solve(&src, 1);
        assert_eq!(p.fraction_at_least(1), 1.0);
        assert!(p.fraction_at_least(2) <= 1.0);
        assert!(p.work_fraction_at_least(2) >= p.work_fraction_at_least(5));
        // Prop 4's engine: most work happens at large degrees on big
        // worst-case instances.
        assert!(p.work_fraction_at_least(3) > 0.5);
    }

    #[test]
    fn bucketed_has_requested_length() {
        let src = UniformSource::nor_iid(2, 9, 0.5, 1);
        let p = profile_solve(&src, 1);
        for b in [1usize, 4, 16, 1000] {
            assert_eq!(p.bucketed(b).len(), b);
        }
    }
}
