//! Randomized algorithms (Section 6): R-Sequential / R-Parallel SOLVE
//! and R-Sequential / R-Parallel α-β.
//!
//! The paper defines these by randomizing the child-visit order, and
//! notes they are *conceptually equivalent to running the deterministic
//! algorithm on a randomly permuted input tree*, with randomization
//! performed lazily.  That is literally how we implement them: wrap the
//! source in [`gt_tree::source::Permuted`] (which permutes children with
//! a pseudo-random permutation derived from `(seed, path)`, computed on
//! demand) and run the deterministic algorithm.
//!
//! All these run in the node-expansion model, as in the paper's Section 6
//! ("we restrict our discussion of randomized algorithms to the
//! node-expansion model").

use crate::alphabeta::{n_parallel_alphabeta, parallel_alphabeta};
use crate::expansion::n_parallel_solve;
use crate::metrics::RunStats;
use gt_tree::source::Permuted;
use gt_tree::TreeSource;

/// R-Parallel SOLVE of width `w` with random choices drawn from `seed`
/// (node-expansion model).  Width 0 is R-Sequential SOLVE.
pub fn r_parallel_solve<S: TreeSource>(source: S, width: u32, seed: u64, record: bool) -> RunStats {
    n_parallel_solve(Permuted::new(source, seed), width, record)
}

/// R-Sequential SOLVE: expand a random unexpanded child at each step
/// (realized as N-Sequential SOLVE on a randomly permuted tree).
pub fn r_sequential_solve<S: TreeSource>(source: S, seed: u64, record: bool) -> RunStats {
    r_parallel_solve(source, 0, seed, record)
}

/// R-Parallel α-β of width `w` (node-expansion model).
pub fn r_parallel_alphabeta<S: TreeSource>(
    source: S,
    width: u32,
    seed: u64,
    record: bool,
) -> RunStats {
    n_parallel_alphabeta(Permuted::new(source, seed), width, record)
}

/// R-Sequential α-β: a random depth-first traversal.
pub fn r_sequential_alphabeta<S: TreeSource>(source: S, seed: u64, record: bool) -> RunStats {
    r_parallel_alphabeta(source, 0, seed, record)
}

/// R-Parallel α-β in the *leaf-evaluation* model (used by experiments
/// that want leaf counts rather than expansion counts).
pub fn r_parallel_alphabeta_leaf_model<S: TreeSource>(
    source: S,
    width: u32,
    seed: u64,
    record: bool,
) -> RunStats {
    parallel_alphabeta(Permuted::new(source, seed), width, record)
}

/// Average the running time and work of a randomized run over `seeds`.
/// Returns `(mean_steps, mean_work)`.
pub fn expected_over_seeds<F>(seeds: std::ops::Range<u64>, mut run: F) -> (f64, f64)
where
    F: FnMut(u64) -> RunStats,
{
    let n = seeds.clone().count().max(1) as f64;
    let mut steps = 0.0;
    let mut work = 0.0;
    for seed in seeds {
        let st = run(seed);
        steps += st.steps as f64;
        work += st.total_work as f64;
    }
    (steps / n, work / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{minimax_value, nor_value};

    #[test]
    fn randomized_solve_is_correct_for_every_seed() {
        let s = UniformSource::nor_iid(2, 6, 0.5, 11);
        let truth = nor_value(&s);
        for seed in 0..20 {
            assert_eq!(r_sequential_solve(&s, seed, false).value, truth);
            assert_eq!(r_parallel_solve(&s, 1, seed, false).value, truth);
        }
    }

    #[test]
    fn randomized_alphabeta_is_correct_for_every_seed() {
        let s = UniformSource::minmax_iid(2, 5, 0, 50, 3);
        let truth = minimax_value(&s);
        for seed in 0..20 {
            assert_eq!(r_sequential_alphabeta(&s, seed, false).value, truth);
            assert_eq!(r_parallel_alphabeta(&s, 1, seed, false).value, truth);
            assert_eq!(
                r_parallel_alphabeta_leaf_model(&s, 1, seed, false).value,
                truth
            );
        }
    }

    #[test]
    fn randomization_beats_worst_case_on_average() {
        // On the deterministic worst-case instance, Sequential SOLVE
        // expands everything; the randomized version should do strictly
        // better on average (Saks–Wigderson).
        let (d, n) = (2u32, 10u32);
        let s = UniformSource::nor_worst_case(d, n);
        let det = crate::expansion::n_sequential_solve(&s, false).total_work;
        let (_, mean_work) = expected_over_seeds(0..16, |seed| r_sequential_solve(&s, seed, false));
        assert!(
            mean_work < det as f64,
            "expected randomized {mean_work} < deterministic {det}"
        );
    }

    #[test]
    fn different_seeds_give_different_traces_somewhere() {
        let s = UniformSource::nor_worst_case(2, 6);
        let a = r_sequential_solve(&s, 1, true).trace.unwrap();
        let mut any_diff = false;
        for seed in 2..10 {
            let b = r_sequential_solve(&s, seed, true).trace.unwrap();
            if a != b {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn expected_over_seeds_averages() {
        let (steps, work) = expected_over_seeds(0..4, |seed| {
            let mut st = RunStats::new(false);
            st.steps = seed + 1;
            st.total_work = 2 * (seed + 1);
            st
        });
        assert!((steps - 2.5).abs() < 1e-12);
        assert!((work - 5.0).abs() < 1e-12);
    }
}
