//! The base-path *code* machinery from the proof of Proposition 3 —
//! instrumented, so the proof's central invariant can be checked on
//! real executions.
//!
//! For each step `t` of width-1 Parallel SOLVE, the **base path** `P_t`
//! is the root-leaf path ending at the leftmost live leaf `w_t`.  Its
//! **code** `C(t) = (c_1, …, c_n)` records, for each node `v_i` on the
//! path, the number of live right-siblings of `v_i` before the step.
//! The proof shows:
//!
//! 1. `C(t+1) <` `C(t)` in lexicographic order — so all codes are
//!    distinct, and
//! 2. the parallel degree of step `t` equals `|{i : c_i > 0}| + 1`,
//!
//! which together give `t_{k+1}(H_T) ≤ C(n,k)(d−1)^k` (the number of
//! vectors with exactly `k` nonzero components).
//!
//! [`InstrumentedRun`] executes width-1 Parallel SOLVE while recording
//! the code of every step; tests (and experiment E3) verify both
//! invariants hold on real trees, not just in the proof.

use crate::metrics::RunStats;
use crate::nor::{NorSim, Policy};
use gt_tree::{NodeId, TreeSource};
use std::cmp::Ordering;

/// The code of one step's base path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepCode {
    /// `c_i` = live right-siblings of the i-th base-path node before
    /// the step (index 0 = the root's child on the path).
    pub code: Vec<u32>,
    /// Parallel degree of the step (leaves actually evaluated).
    pub degree: u32,
    /// Base-path leaf (the leftmost live leaf at this step).
    pub leaf_path: Vec<u32>,
}

impl StepCode {
    /// Number of nonzero components — the proof predicts
    /// `degree = nonzeros + 1` on uniform trees.
    pub fn nonzeros(&self) -> usize {
        self.code.iter().filter(|&&c| c > 0).count()
    }
}

/// Compare two codes lexicographically, padding the shorter with zeros
/// (base paths in non-uniform trees can differ in length).
pub fn cmp_codes(a: &[u32], b: &[u32]) -> Ordering {
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        match x.cmp(&y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// A width-1 Parallel SOLVE run that records the Proposition 3 code of
/// every step.
pub struct InstrumentedRun {
    /// Per-step codes, in execution order.
    pub steps: Vec<StepCode>,
    /// The ordinary run statistics.
    pub stats: RunStats,
}

/// Execute width-1 Parallel SOLVE on `source`, recording base-path
/// codes.
pub fn instrumented_parallel_solve<S: TreeSource>(source: S) -> InstrumentedRun {
    let mut sim = NorSim::new(source);
    let mut stats = RunStats::new(false);
    let mut steps = Vec::new();
    loop {
        // The frontier of a width-1 step, leftmost first.
        let frontier = sim.frontier_paths(Policy::Width(1));
        if frontier.is_empty() {
            break;
        }
        let (leftmost_id, leftmost_path) = frontier[0].clone();
        let code = base_path_code(&sim, leftmost_id);
        steps.push(StepCode {
            code,
            degree: frontier.len() as u32,
            leaf_path: leftmost_path,
        });
        sim.step(Policy::Width(1), &mut stats);
    }
    stats.value = i64::from(sim.root_value().expect("run finished"));
    InstrumentedRun { steps, stats }
}

/// Compute the code of the base path ending at `leaf`: for each path
/// node, its number of live right-siblings.
fn base_path_code<S: TreeSource>(sim: &NorSim<S>, leaf: NodeId) -> Vec<u32> {
    // Walk root -> leaf; at each node count undetermined right-siblings.
    let tree = sim.tree();
    let mut rev = Vec::new();
    let mut cur = leaf;
    while let Some(parent) = tree.parent(cur) {
        let my_index = tree.child_index(cur);
        let mut live_right = 0u32;
        for i in (my_index + 1)..tree.arity(parent) {
            let sib = tree.child(parent, i);
            if sim.is_live_node(sib) {
                live_right += 1;
            }
        }
        rev.push(live_right);
        cur = parent;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::{critical_bias, UniformSource};
    use gt_tree::minimax::nor_value;
    use gt_tree::skeleton::nor_skeleton;

    #[test]
    fn codes_strictly_decrease_lexicographically() {
        // The heart of Proposition 3's proof, checked on skeletons
        // (where the proof lives) across seeds.
        for seed in 0..10 {
            let src = UniformSource::nor_iid(2, 9, critical_bias(2), seed);
            let h = nor_skeleton(&src);
            let run = instrumented_parallel_solve(&h);
            for w in run.steps.windows(2) {
                assert_eq!(
                    cmp_codes(&w[1].code, &w[0].code),
                    Ordering::Less,
                    "codes did not decrease: {:?} then {:?} (seed {seed})",
                    w[0].code,
                    w[1].code
                );
            }
        }
    }

    #[test]
    fn degree_equals_nonzeros_plus_one_on_skeletons() {
        for seed in 0..10 {
            for (d, n) in [(2u32, 8u32), (3, 5)] {
                let src = UniformSource::nor_iid(d, n, 0.5, seed);
                let h = nor_skeleton(&src);
                let run = instrumented_parallel_solve(&h);
                for (i, st) in run.steps.iter().enumerate() {
                    assert_eq!(
                        st.degree as usize,
                        st.nonzeros() + 1,
                        "step {i}: degree {} vs code {:?} (d={d} n={n} seed={seed})",
                        st.degree,
                        st.code
                    );
                }
            }
        }
    }

    #[test]
    fn codes_on_full_trees_still_decrease() {
        // The lexicographic-decrease argument does not require the
        // skeleton; verify it on the full tree too.
        for seed in 0..6 {
            let src = UniformSource::nor_iid(2, 8, 0.6, seed);
            let run = instrumented_parallel_solve(&src);
            assert_eq!(run.stats.value, nor_value(&src));
            for w in run.steps.windows(2) {
                assert_eq!(cmp_codes(&w[1].code, &w[0].code), Ordering::Less);
            }
        }
    }

    #[test]
    fn code_count_implies_prop3_bound() {
        // Distinct codes with k nonzeros are at most C(n,k)(d-1)^k, so
        // counting measured codes per k must respect the bound.
        let (d, n) = (2u32, 10u32);
        let src = UniformSource::nor_worst_case(d, n);
        let h = nor_skeleton(&src);
        let run = instrumented_parallel_solve(&h);
        let mut per_k = std::collections::HashMap::new();
        for st in &run.steps {
            *per_k.entry(st.nonzeros() as u32).or_insert(0u64) += 1;
        }
        for (&k, &count) in &per_k {
            let bound = gt_tree_binom(n, k) * ((d - 1) as u64).pow(k);
            assert!(count <= bound, "k={k}: {count} > {bound}");
        }
    }

    fn gt_tree_binom(n: u32, k: u32) -> u64 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut acc = 1u64;
        for i in 0..k {
            acc = acc * (n - i) as u64 / (i + 1) as u64;
        }
        acc
    }

    #[test]
    fn cmp_codes_pads_with_zeros() {
        assert_eq!(cmp_codes(&[1, 0], &[1]), Ordering::Equal);
        assert_eq!(cmp_codes(&[1], &[1, 2]), Ordering::Less);
        assert_eq!(cmp_codes(&[2], &[1, 9, 9]), Ordering::Greater);
    }

    #[test]
    fn base_path_is_the_leftmost_live_leaf() {
        let src = UniformSource::nor_iid(2, 6, 0.5, 1);
        let run = instrumented_parallel_solve(&src);
        // Step 1's base path must be the all-zeros path (leftmost leaf).
        assert!(run.steps[0].leaf_path.iter().all(|&c| c == 0));
    }
}
