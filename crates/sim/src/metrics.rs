//! Run statistics: exactly the quantities the paper's analysis is about.

use gt_tree::Value;

/// Result of running a simulated algorithm on a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// The value computed at the root.
    pub value: Value,
    /// Number of basic steps — the paper's running time (`P(T)` for the
    /// parallel algorithms, `S(T)` for the sequential ones, since a
    /// sequential step does one unit of work).
    pub steps: u64,
    /// Total units of work: leaves evaluated (leaf-evaluation model) or
    /// nodes expanded (node-expansion model).  This is `W(T)` in
    /// Corollary 1.
    pub total_work: u64,
    /// The largest parallel degree of any step — the paper's "number of
    /// processors used".
    pub processors_used: u32,
    /// `degree_counts[k]` = number of steps with parallel degree exactly
    /// `k` (index 0 unused) — the paper's `t_k(T)`.
    pub degree_counts: Vec<u64>,
    /// Work items (leaf paths, or expanded-node paths) in step order,
    /// left-to-right within a step, when recording was requested.
    pub trace: Option<Vec<Vec<u32>>>,
    /// Number of tree nodes materialized by the end of the run (a memory
    /// proxy; not a paper metric).
    pub nodes_materialized: u64,
    /// Pruning events: determinations that killed still-live sibling
    /// subtrees (a NOR child determined `1` short-circuiting its parent;
    /// an α-β sweep deleting a node's remaining brothers).
    pub cutoffs: u64,
}

impl RunStats {
    /// An empty stats accumulator; `record` enables trace collection.
    pub fn new(record: bool) -> Self {
        RunStats {
            value: 0,
            steps: 0,
            total_work: 0,
            processors_used: 0,
            degree_counts: Vec::new(),
            trace: record.then(Vec::new),
            nodes_materialized: 0,
            cutoffs: 0,
        }
    }

    /// Record one completed step of parallel degree `k ≥ 1`.
    pub fn record_step(&mut self, k: u32) {
        self.steps += 1;
        self.total_work += u64::from(k);
        self.processors_used = self.processors_used.max(k);
        if self.degree_counts.len() <= k as usize {
            self.degree_counts.resize(k as usize + 1, 0);
        }
        self.degree_counts[k as usize] += 1;
    }

    /// `t_k`: the number of steps with parallel degree exactly `k`.
    pub fn t(&self, k: usize) -> u64 {
        self.degree_counts.get(k).copied().unwrap_or(0)
    }

    /// Speed-up of this run relative to a sequential work count
    /// (`S(T) / P(T)` with `S(T) = seq_work`).
    pub fn speedup_vs(&self, seq_work: u64) -> f64 {
        seq_work as f64 / self.steps as f64
    }

    /// Average parallel degree (total work / steps).
    pub fn avg_degree(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_work as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_step_accumulates() {
        let mut s = RunStats::new(false);
        s.record_step(1);
        s.record_step(3);
        s.record_step(3);
        assert_eq!(s.steps, 3);
        assert_eq!(s.total_work, 7);
        assert_eq!(s.processors_used, 3);
        assert_eq!(s.t(1), 1);
        assert_eq!(s.t(2), 0);
        assert_eq!(s.t(3), 2);
        assert_eq!(s.t(99), 0);
        assert!((s.avg_degree() - 7.0 / 3.0).abs() < 1e-12);
        assert!((s.speedup_vs(21) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn trace_only_when_requested() {
        assert!(RunStats::new(true).trace.is_some());
        assert!(RunStats::new(false).trace.is_none());
    }
}
