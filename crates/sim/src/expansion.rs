//! NOR-tree algorithms in the node-expansion model (Section 5):
//! N-Sequential SOLVE and N-Parallel SOLVE of width `w`.
//!
//! Here the algorithm is given only the root; applying *node expansion*
//! to a node either evaluates it (if it is a leaf) or produces its
//! children.  A **frontier node** is a live node that has not been
//! expanded, and its pruning number is the number of live left-siblings
//! of its ancestors.  N-Parallel SOLVE of width `w` expands, per step,
//! every frontier node with pruning number at most `w`.

use crate::metrics::RunStats;
use gt_tree::{LazyTree, NodeId, NodeKind, TreeSource};

/// A resumable simulation of N-(Sequential/Parallel) SOLVE.
pub struct ExpansionSim<S: TreeSource> {
    tree: LazyTree<S>,
    determined: Vec<Option<bool>>,
    undet_children: Vec<u32>,
    frontier: Vec<NodeId>,
}

impl<S: TreeSource> ExpansionSim<S> {
    /// Set up a simulation over `source`; only the root exists initially.
    pub fn new(source: S) -> Self {
        ExpansionSim {
            tree: LazyTree::new(source),
            determined: vec![None],
            undet_children: vec![0],
            frontier: Vec::new(),
        }
    }

    /// The materialized tree (exactly the expanded region plus its
    /// children).
    pub fn tree(&self) -> &LazyTree<S> {
        &self.tree
    }

    /// Root value once finished.
    pub fn root_value(&self) -> Option<bool> {
        self.determined[0]
    }

    fn sync_side_tables(&mut self) {
        let n = self.tree.len();
        if self.determined.len() < n {
            self.determined.resize(n, None);
            self.undet_children.resize(n, 0);
        }
    }

    fn determine(&mut self, v: NodeId, val: bool) {
        if self.determined[v as usize].is_some() {
            return;
        }
        self.determined[v as usize] = Some(val);
        if let Some(p) = self.tree.parent(v) {
            if self.determined[p as usize].is_some() {
                return;
            }
            if val {
                self.determine(p, false);
            } else {
                self.undet_children[p as usize] -= 1;
                if self.undet_children[p as usize] == 0 {
                    self.determine(p, true);
                }
            }
        }
    }

    /// Collect live unexpanded nodes with pruning number ≤ `budget`.
    fn collect(&mut self, v: NodeId, budget: i64) {
        debug_assert!(budget >= 0);
        if !self.tree.is_expanded(v) {
            self.frontier.push(v);
            return;
        }
        // Expanded leaves are determined, so `v` is internal here.
        debug_assert!(!self.tree.is_leaf(v));
        let mut live_seen: i64 = 0;
        for i in 0..self.tree.arity(v) {
            let u = self.tree.child(v, i);
            if self.determined[u as usize].is_some() {
                continue;
            }
            if live_seen > budget {
                break;
            }
            self.collect(u, budget - live_seen);
            live_seen += 1;
        }
    }

    /// One basic step: expand all frontier nodes with pruning number ≤
    /// `width`.  Returns the parallel degree, or `None` when done.
    pub fn step(&mut self, width: u32, stats: &mut RunStats) -> Option<u32> {
        if self.determined[0].is_some() {
            return None;
        }
        self.frontier.clear();
        self.collect(0, i64::from(width));
        debug_assert!(!self.frontier.is_empty());
        let degree = self.frontier.len() as u32;
        let nodes = std::mem::take(&mut self.frontier);
        for &v in &nodes {
            if let Some(tr) = &mut stats.trace {
                tr.push(self.tree.path_of(v));
            }
            match self.tree.expand(v) {
                NodeKind::Leaf(val) => {
                    self.sync_side_tables();
                    self.determine(v, val != 0);
                }
                NodeKind::Internal(d) => {
                    self.sync_side_tables();
                    self.undet_children[v as usize] = d;
                }
            }
        }
        self.frontier = nodes;
        stats.record_step(degree);
        Some(degree)
    }

    /// Collect the next step's frontier *without expanding it*: each
    /// live unexpanded node (pruning number ≤ `width`) with its path.
    /// Empty when the root is determined.  Used by the threaded engine,
    /// which queries the source for the returned paths in parallel and
    /// then calls [`ExpansionSim::apply_expansions`].
    pub fn frontier_paths(&mut self, width: u32) -> Vec<(NodeId, Vec<u32>)> {
        let mut out = Vec::new();
        self.frontier_paths_into(width, &mut out);
        out
    }

    /// [`ExpansionSim::frontier_paths`] writing into a caller-owned
    /// buffer so round-driven engines can reuse the outer vector and the
    /// per-entry path buffers across rounds.
    pub fn frontier_paths_into(&mut self, width: u32, out: &mut Vec<(NodeId, Vec<u32>)>) {
        if self.determined[0].is_some() {
            out.clear();
            return;
        }
        self.frontier.clear();
        self.collect(0, i64::from(width));
        let ids = std::mem::take(&mut self.frontier);
        out.truncate(ids.len());
        let reused = out.len();
        for (slot, &id) in out.iter_mut().zip(&ids) {
            slot.0 = id;
            self.tree.path_of_into(id, &mut slot.1);
        }
        for &id in &ids[reused..] {
            let mut p = Vec::new();
            self.tree.path_of_into(id, &mut p);
            out.push((id, p));
        }
        self.frontier = ids;
    }

    /// Complete a step whose expansion results were computed externally
    /// (against the same source).
    pub fn apply_expansions(&mut self, kinds: &[(NodeId, NodeKind)], stats: &mut RunStats) {
        assert!(!kinds.is_empty(), "a step must expand at least one node");
        for &(id, kind) in kinds {
            if let Some(tr) = &mut stats.trace {
                tr.push(self.tree.path_of(id));
            }
            self.tree.install_expansion(id, kind);
            self.sync_side_tables();
            match kind {
                NodeKind::Leaf(val) => self.determine(id, val != 0),
                NodeKind::Internal(d) => self.undet_children[id as usize] = d,
            }
        }
        stats.record_step(kinds.len() as u32);
        if let Some(b) = self.determined[0] {
            stats.value = i64::from(b);
            stats.nodes_materialized = self.tree.len() as u64;
        }
    }

    /// Run to completion with the given width.
    pub fn run(&mut self, width: u32, record: bool) -> RunStats {
        let mut stats = RunStats::new(record);
        while self.step(width, &mut stats).is_some() {}
        stats.value = i64::from(self.determined[0].expect("finished"));
        stats.nodes_materialized = self.tree.len() as u64;
        debug_assert_eq!(stats.total_work, self.tree.expansions());
        stats
    }
}

/// N-Parallel SOLVE of width `w` (Section 5).  Width 0 is N-Sequential
/// SOLVE.
pub fn n_parallel_solve<S: TreeSource>(source: S, width: u32, record: bool) -> RunStats {
    ExpansionSim::new(source).run(width, record)
}

/// N-Sequential SOLVE: expand the leftmost frontier node at each step.
pub fn n_sequential_solve<S: TreeSource>(source: S, record: bool) -> RunStats {
    n_parallel_solve(source, 0, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{nor_value, seq_solve};
    use gt_tree::ExplicitTree;

    #[test]
    fn single_leaf() {
        let st = n_parallel_solve(ExplicitTree::leaf(0), 1, false);
        assert_eq!(st.value, 0);
        assert_eq!(st.steps, 1); // one expansion evaluates the root leaf
        assert_eq!(st.total_work, 1);
    }

    #[test]
    fn sequential_expansions_match_reference() {
        for seed in 0..20 {
            let s = UniformSource::nor_iid(2, 7, 0.5, seed);
            let sim = n_sequential_solve(&s, false);
            let re = seq_solve(&s, false);
            assert_eq!(sim.value, re.value, "seed {seed}");
            assert_eq!(sim.total_work, re.nodes_expanded, "seed {seed}");
        }
    }

    #[test]
    fn value_matches_ground_truth_all_widths() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(3, 4, 0.5, seed);
            for w in 0..4 {
                assert_eq!(n_parallel_solve(&s, w, false).value, nor_value(&s));
            }
        }
    }

    #[test]
    fn materializes_only_expanded_region_plus_fringe() {
        let s = UniformSource::nor_iid(2, 12, 0.5, 3);
        let st = n_parallel_solve(&s, 1, false);
        // Each expansion creates ≤ 2 children, so nodes ≤ 2·work + 1.
        assert!(st.nodes_materialized <= 2 * st.total_work + 1);
    }

    #[test]
    fn width1_no_slower_than_sequential_steps() {
        for seed in 0..10 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let seq = n_sequential_solve(&s, false);
            let par = n_parallel_solve(&s, 1, false);
            assert!(par.steps <= seq.steps, "seed {seed}");
        }
    }

    #[test]
    fn expansion_trace_starts_at_root() {
        let s = UniformSource::nor_iid(2, 4, 0.5, 7);
        let st = n_parallel_solve(&s, 1, true);
        let tr = st.trace.unwrap();
        assert_eq!(tr[0], Vec::<u32>::new(), "first expansion is the root");
    }

    #[test]
    fn non_uniform_trees_work() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(0),
            ExplicitTree::internal(vec![ExplicitTree::leaf(1), ExplicitTree::leaf(0)]),
        ]);
        for w in 0..3 {
            assert_eq!(n_parallel_solve(&t, w, false).value, nor_value(&t));
        }
    }
}
