//! Drive the Section 7 message-passing machine: one processor per tree
//! level, six message types, the pre-emption rule, and zone
//! multiplexing.
//!
//! ```text
//! cargo run --release --example message_passing
//! ```

use karp_zhang::msgsim::{simulate, simulate_with_processors};
use karp_zhang::tree::gen::UniformSource;
use karp_zhang::tree::minimax::seq_solve;

fn main() {
    let n = 14u32;
    let tree = UniformSource::nor_worst_case(2, n);
    let s_star = seq_solve(&tree, false).nodes_expanded;
    println!("worst-case B(2,{n}): N-Sequential SOLVE expands S* = {s_star} nodes\n");

    let r = simulate(&tree);
    println!(
        "full machine (one processor per level, p = {}):",
        r.processors
    );
    println!("  value            : {}", r.value);
    println!(
        "  ticks            : {}  (speed-up {:.2})",
        r.ticks,
        s_star as f64 / r.ticks as f64
    );
    println!("  work actions     : {}", r.work_actions);
    println!("  unique expansions: {}", r.unique_expansions);
    println!(
        "  messages         : S-SOLVE*={} P-SOLVE*={} P-SOLVE**={} P-SOLVE***={} val={}",
        r.messages[0], r.messages[1], r.messages[2], r.messages[3], r.messages[4]
    );

    println!("\nzone multiplexing (fixed processor budgets):");
    println!(
        "{:>4} {:>10} {:>9} {:>10}",
        "p", "ticks", "speedup", "speedup/p"
    );
    for p in [1u32, 2, 4, 8, n + 1] {
        let r = simulate_with_processors(&tree, p);
        let sp = s_star as f64 / r.ticks as f64;
        println!("{p:>4} {:>10} {sp:>9.2} {:>10.3}", r.ticks, sp / p as f64);
    }
}
