//! Connect Four with the cascade-parallel α-β engine: the "wide and
//! shallow" game trees Section 8 contrasts with the paper's deep-tree
//! asymptotics.
//!
//! ```text
//! cargo run --release --example connect_four [depth]
//! ```

use karp_zhang::core::engine::{best_move, CascadeEngine, SearchConfig};
use karp_zhang::games::{Connect4, Game, GameTreeSource};
use karp_zhang::tree::minimax::seq_alphabeta;
use std::time::Instant;

fn render(p: &karp_zhang::games::connect4::Position) -> String {
    let mut s = String::new();
    for row in (0..6).rev() {
        for col in 0..7 {
            let bit = 1u64 << (col * 7 + row);
            s.push(if p.first & bit != 0 {
                'X'
            } else if p.second() & bit != 0 {
                'O'
            } else {
                '.'
            });
            s.push(' ');
        }
        s.push('\n');
    }
    s.push_str("0 1 2 3 4 5 6\n");
    s
}

fn main() {
    let depth: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let game = Connect4::default();

    // Compare sequential vs cascade-parallel search of the opening tree.
    let src = GameTreeSource::from_initial(game, depth);
    let t0 = Instant::now();
    let seq = seq_alphabeta(&src, false);
    let t_seq = t0.elapsed();
    let engine = CascadeEngine::with_width(2);
    let par = engine.solve_minmax(&src);
    assert_eq!(par.value, seq.value);
    println!("Connect Four opening search, depth {depth}:");
    println!(
        "  sequential: value {}, {} leaves, {t_seq:?}",
        seq.value, seq.leaves_evaluated
    );
    println!(
        "  cascade w2: value {}, {} leaves, {:?}  (wall-clock speed-up {:.2})",
        par.value,
        par.leaves_evaluated,
        par.elapsed,
        t_seq.as_secs_f64() / par.elapsed.as_secs_f64()
    );

    // Short self-play demo (first 10 plies).
    println!("\nself-play, first 10 plies (depth-{depth} search per move):");
    let mut state = game.initial();
    for _ in 0..10 {
        let Some((mv, _)) = best_move(&game, &state, SearchConfig { depth, width: 2 }) else {
            break;
        };
        state = game.apply(&state, mv);
    }
    println!("{}", render(&state));
    if let Some(v) = state.outcome() {
        println!("game over early, outcome {v}");
    }
}
