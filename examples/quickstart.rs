//! Quickstart: evaluate a game tree three ways and see the paper's
//! speed-up.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use karp_zhang::core::engine::RoundEngine;
use karp_zhang::sim::{parallel_solve, team_solve};
use karp_zhang::tree::gen::{critical_bias, UniformSource};
use karp_zhang::tree::minimax::seq_solve;

fn main() {
    // A uniform binary NOR (AND/OR) tree of height 16 with i.i.d. leaves
    // at the critical bias — the classic hard random instance.
    let (d, n) = (2u32, 16u32);
    let tree = UniformSource::nor_iid(d, n, critical_bias(d), 2024);

    // 1. Sequential SOLVE: the left-to-right algorithm.  S(T) = leaves
    //    evaluated = running time.
    let seq = seq_solve(&tree, false);
    println!(
        "Sequential SOLVE : value = {}, S(T) = {} leaves",
        seq.value, seq.leaves_evaluated
    );

    // 2. Team SOLVE with 17 processors: the naive parallelization; only
    //    a sqrt(p) speed-up in the worst case (Proposition 1).
    let team = team_solve(&tree, n + 1, false);
    println!(
        "Team SOLVE (p={}) : {} steps  -> speed-up {:.2}",
        n + 1,
        team.steps,
        seq.leaves_evaluated as f64 / team.steps as f64
    );

    // 3. Parallel SOLVE of width 1 — the paper's contribution: evaluate
    //    every live leaf with pruning number <= 1.  Linear speed-up with
    //    n+1 processors (Theorem 1).
    let par = parallel_solve(&tree, 1, false);
    println!(
        "Parallel SOLVE w=1: {} steps  -> speed-up {:.2} using {} processors (n+1 = {})",
        par.steps,
        seq.leaves_evaluated as f64 / par.steps as f64,
        par.processors_used,
        n + 1
    );
    assert_eq!(par.value, seq.value);

    // 4. The same algorithm on a real thread pool: rounds match the
    //    model exactly.
    let engine = RoundEngine::with_width(1).solve_nor(&tree);
    println!(
        "Threaded engine  : value = {}, {} rounds in {:?}",
        engine.value, engine.rounds, engine.elapsed
    );
    assert_eq!(engine.rounds, par.steps);
}
