//! Othello 6×6: the richest game in the suite — variable branching,
//! forced passes, capture dynamics — searched with the parallel α-β
//! engine and the transposition-table baseline.
//!
//! ```text
//! cargo run --release --example othello [depth]
//! ```

use karp_zhang::core::engine::{best_move, SearchConfig, TtSearch};
use karp_zhang::games::{Game, GameTreeSource, Othello};
use karp_zhang::tree::minimax::seq_alphabeta;
use std::time::Instant;

fn render(s: &karp_zhang::games::OthelloState) -> String {
    let mut out = String::new();
    for r in 0..6 {
        for c in 0..6 {
            let b = 1u64 << (r * 6 + c);
            out.push(if s.black & b != 0 {
                'X'
            } else if s.white & b != 0 {
                'O'
            } else {
                '.'
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let depth: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let g = Othello;

    // Opening search: tree-shaped vs transposition-table.
    let src = GameTreeSource::from_initial(g, depth);
    let t0 = Instant::now();
    let tree = seq_alphabeta(&src, false);
    let t_tree = t0.elapsed();
    let mut tt = TtSearch::new(g, 1 << 22);
    let t0 = Instant::now();
    let v_tt = tt.search(&g.initial(), depth);
    let t_tt = t0.elapsed();
    assert_eq!(tree.value, v_tt);
    println!("Othello 6x6 opening search, depth {depth}:");
    println!(
        "  tree alpha-beta: value {}, {} leaves, {t_tree:?}",
        tree.value, tree.leaves_evaluated
    );
    println!(
        "  TT alpha-beta  : value {v_tt}, {} evals ({} transposition hits), {t_tt:?}",
        tt.stats.evals, tt.stats.hits
    );

    // Self-play to the end.
    println!("\nself-play (depth-{depth} search per move):");
    let mut state = g.initial();
    let mut plies = 0;
    while let Some((mv, _)) = best_move(&g, &state, SearchConfig { depth, width: 1 }) {
        state = g.apply(&state, mv);
        plies += 1;
        if plies > 64 {
            break;
        }
    }
    println!("{}", render(&state));
    let diff = state.disc_diff();
    println!(
        "final discs: Black {} — White {}  ({} after {plies} plies)",
        state.black.count_ones(),
        state.white.count_ones(),
        match diff.cmp(&0) {
            std::cmp::Ordering::Greater => "Black wins",
            std::cmp::Ordering::Less => "White wins",
            std::cmp::Ordering::Equal => "draw",
        }
    );
}
