//! Compare every sequential MIN/MAX baseline in the workspace — α-β,
//! SCOUT, SSS\* — plus the width-1 parallel algorithms, on the same
//! instances across all four orderings.
//!
//! ```text
//! cargo run --release --example baselines
//! ```

use karp_zhang::sim::parallel_alphabeta;
use karp_zhang::tree::gen::UniformSource;
use karp_zhang::tree::minimax::seq_alphabeta;
use karp_zhang::tree::scout::scout;
use karp_zhang::tree::sss::{parallel_sss_star, sss_star};
use karp_zhang::tree::TreeSource;

fn main() {
    let (d, n) = (2u32, 12u32);
    println!("sequential baselines on M({d},{n}) (leaf evaluations):\n");
    println!(
        "{:>12} {:>12} {:>9} {:>9} {:>14} {:>14}",
        "ordering", "alpha-beta", "SCOUT", "SSS*", "par-ab steps", "par-SSS* lf-steps"
    );
    let workloads: Vec<(&str, Box<dyn TreeSource + Send>)> = vec![
        (
            "iid",
            Box::new(UniformSource::minmax_iid(d, n, 0, 1 << 20, 7)),
        ),
        (
            "correlated",
            Box::new(UniformSource::minmax_correlated(d, n, 4, 7)),
        ),
        (
            "best-ord",
            Box::new(UniformSource::minmax_best_ordered(d, n, 0)),
        ),
        (
            "worst-ord",
            Box::new(UniformSource::minmax_worst_ordered(d, n)),
        ),
    ];
    for (tag, src) in &workloads {
        let ab = seq_alphabeta(src, false);
        let sc = scout(src);
        let ss = sss_star(src);
        let pab = parallel_alphabeta(src, 1, false);
        let pss = parallel_sss_star(src, n + 1);
        assert_eq!(ab.value, sc.value);
        assert_eq!(ab.value, ss.value);
        assert_eq!(ab.value, pab.value);
        assert_eq!(ab.value, pss.value);
        println!(
            "{:>12} {:>12} {:>9} {:>9} {:>14} {:>14}",
            tag,
            ab.leaves_evaluated,
            sc.leaves_evaluated,
            ss.leaves_evaluated,
            pab.steps,
            pss.leaf_steps
        );
    }
    println!(
        "\nall five algorithms agree on every value; SSS* never evaluates more\n\
         leaves than alpha-beta (dominance), SCOUT trades re-searches for\n\
         cheap Boolean tests, and the parallel variants compress leaf\n\
         evaluations into lock-step rounds (the paper's P(T))."
    );
}
