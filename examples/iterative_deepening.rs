//! Iterative deepening in action: root move ordering and aspiration
//! windows shrinking the cost of each successive depth on Connect Four.
//!
//! ```text
//! cargo run --release --example iterative_deepening [max_depth]
//! ```

use karp_zhang::core::engine::{iterative_best_move, DeepeningConfig};
use karp_zhang::games::{Connect4, Game};

fn main() {
    let max_depth: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let g = Connect4::default();

    println!("Connect Four iterative deepening to depth {max_depth}:\n");
    for (label, aspiration) in [("full windows", None), ("aspiration ±8", Some(8i64))] {
        let out = iterative_best_move(
            &g,
            &g.initial(),
            DeepeningConfig {
                max_depth,
                width: 1,
                aspiration,
            },
        )
        .expect("opening position has moves");
        println!("{label}:");
        println!(
            "{:>6} {:>6} {:>7} {:>12}",
            "depth", "move", "value", "leaves"
        );
        for d in &out.per_depth {
            println!(
                "{:>6} {:>6} {:>7} {:>12}",
                d.depth, d.best_move, d.value, d.leaves
            );
        }
        println!(
            "  total: {} leaves, final move {} (value {})\n",
            out.total_leaves(),
            out.best_move,
            out.value
        );
    }
    println!("ordering carries across iterations: the deepest search benefits");
    println!("from the previous iteration's best move being searched first.");
    let _ = g.num_moves(&g.initial());
}
