//! Visualize the *shape* of a Parallel SOLVE execution: how the
//! parallel degree ramps up, plateaus and tails off — the structure
//! behind Proposition 4's "most work happens in steps of large degree".
//!
//! ```text
//! cargo run --release --example step_profile
//! ```

use karp_zhang::analysis::{bars, sparkline};
use karp_zhang::sim::trace::{profile_alphabeta, profile_solve};
use karp_zhang::tree::gen::{critical_bias, UniformSource};

fn main() {
    let (d, n) = (2u32, 16u32);

    for (label, profile) in [
        (
            "worst-case B(2,16), width 1",
            profile_solve(UniformSource::nor_worst_case(d, n), 1),
        ),
        (
            "critical i.i.d. B(2,16), width 1",
            profile_solve(UniformSource::nor_iid(d, n, critical_bias(d), 9), 1),
        ),
        (
            "i.i.d. M(2,12), alpha-beta width 1",
            profile_alphabeta(UniformSource::minmax_iid(2, 12, 0, 1 << 20, 9), 1),
        ),
    ] {
        println!("== {label}");
        println!(
            "   steps = {}, work = {}, max degree = {}, avg degree = {:.2}",
            profile.stats.steps,
            profile.stats.total_work,
            profile.stats.processors_used,
            profile.stats.avg_degree()
        );
        println!("   degree over time: {}", sparkline(&profile.bucketed(64)));
        println!(
            "   work done at degree >= n/2: {:.1}%  (Prop 4: most work is wide)",
            100.0 * profile.work_fraction_at_least(n.div_ceil(2))
        );
        // Degree histogram.
        let rows: Vec<(String, u64)> = profile
            .stats
            .degree_counts
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (format!("deg {k}"), c))
            .collect();
        println!("{}", bars(&rows, 40));
    }
}
