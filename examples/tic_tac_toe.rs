//! Solve Tic-Tac-Toe with the parallel α-β engine and play a perfect
//! game against itself.
//!
//! ```text
//! cargo run --release --example tic_tac_toe
//! ```

use karp_zhang::core::engine::{best_move, SearchConfig};
use karp_zhang::games::{Game, GameTreeSource, TicTacToe};
use karp_zhang::sim::{parallel_alphabeta, sequential_alphabeta};

fn render(board: &karp_zhang::games::tictactoe::Board) -> String {
    let mut s = String::new();
    for r in 0..3 {
        for c in 0..3 {
            let bit = 1u16 << (r * 3 + c);
            s.push(if board.x & bit != 0 {
                'X'
            } else if board.o & bit != 0 {
                'O'
            } else {
                '.'
            });
        }
        s.push('\n');
    }
    s
}

fn main() {
    // First: evaluate the full game tree as a MIN/MAX tree in the
    // paper's model and report the parallel speed-up.
    let tree = GameTreeSource::from_initial(TicTacToe, 9);
    let seq = sequential_alphabeta(&tree, false);
    let par = parallel_alphabeta(&tree, 1, false);
    println!("Tic-Tac-Toe game tree (depth 9):");
    println!("  game value (perfect play) = {} (0 = draw)", seq.value);
    println!(
        "  Sequential alpha-beta     : {} leaf evaluations",
        seq.total_work
    );
    println!(
        "  Parallel alpha-beta w=1   : {} steps  (speed-up {:.2}, {} processors)",
        par.steps,
        seq.total_work as f64 / par.steps as f64,
        par.processors_used
    );
    assert_eq!(seq.value, par.value);

    // Then: self-play with the threaded engine.
    println!("\nPerfect self-play:");
    let game = TicTacToe;
    let mut state = game.initial();
    let cfg = SearchConfig { depth: 9, width: 1 };
    while let Some((mv, val)) = best_move(&game, &state, cfg) {
        state = game.apply(&state, mv);
        println!("move {mv} (value {val}):\n{}", render(&state));
    }
    println!(
        "outcome: {:?} (Some(0) = draw, as theory demands)",
        state.outcome()
    );
    assert_eq!(state.outcome(), Some(0));
}
