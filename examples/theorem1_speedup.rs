//! Watch Theorem 1 happen: the width-1 speed-up grows linearly with the
//! height of the tree.
//!
//! ```text
//! cargo run --release --example theorem1_speedup
//! ```

use karp_zhang::analysis::fit_through_origin;
use karp_zhang::core::theory;
use karp_zhang::sim::parallel_solve;
use karp_zhang::tree::gen::UniformSource;
use karp_zhang::tree::minimax::seq_solve;

fn main() {
    println!("Theorem 1 on worst-case B(2,n): S(T)/P(T) vs c(n+1)\n");
    println!(
        "{:>4} {:>10} {:>8} {:>9} {:>14}",
        "n", "S(T)", "P(T)", "speedup", "speedup/(n+1)"
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for n in (8..=18).step_by(2) {
        let tree = UniformSource::nor_worst_case(2, n);
        let s = seq_solve(&tree, false).leaves_evaluated;
        let p = parallel_solve(&tree, 1, false).steps;
        let speedup = s as f64 / p as f64;
        println!(
            "{n:>4} {s:>10} {p:>8} {speedup:>9.2} {:>14.3}",
            speedup / (n as f64 + 1.0)
        );
        xs.push(n as f64 + 1.0);
        ys.push(speedup);
    }
    let (c, r2) = fit_through_origin(&xs, &ys);
    println!("\nempirical fit: speedup = {c:.3} * (n+1)   (R^2 = {r2:.3})");

    // Compare with the constant the paper's proof machinery guarantees.
    let n_ref = 18;
    let provable =
        theory::provable_speedup(2, n_ref, theory::fact1_u128(2, n_ref)) / (n_ref as f64 + 1.0);
    println!("provable constant (Prop 4 at the Fact-1 work level, n={n_ref}): {provable:.4}");
    println!("\n\"The provable constant c in Theorem 1 is rather poor.  Some simulations");
    println!(" we did indicates that a better constant is achievable.\"  — Section 8");
}
