//! The width knob (Section 8): the paper proves linear speed-up for
//! width 1 and conjectures it for any fixed width with `O(n^w)`
//! processors.  Sweep the width and watch steps, processors and total
//! work trade off.
//!
//! ```text
//! cargo run --release --example width_ablation
//! ```

use karp_zhang::core::theory::width_processor_cap;
use karp_zhang::sim::{parallel_alphabeta, parallel_solve};
use karp_zhang::tree::gen::{critical_bias, UniformSource};
use karp_zhang::tree::minimax::{seq_alphabeta, seq_solve};

fn main() {
    let (d, n) = (2u32, 14u32);

    println!("NOR tree: critical i.i.d. B({d},{n})");
    let tree = UniformSource::nor_iid(d, n, critical_bias(d), 77);
    let s = seq_solve(&tree, false).leaves_evaluated;
    println!("  S(T) = {s}\n");
    println!(
        "{:>3} {:>8} {:>9} {:>11} {:>10} {:>10} {:>10}",
        "w", "steps", "speedup", "procs used", "procs cap", "work", "work/S(T)"
    );
    for w in 0..=4 {
        let st = parallel_solve(&tree, w, false);
        println!(
            "{w:>3} {:>8} {:>9.2} {:>11} {:>10} {:>10} {:>10.2}",
            st.steps,
            s as f64 / st.steps as f64,
            st.processors_used,
            width_processor_cap(d, n, w),
            st.total_work,
            st.total_work as f64 / s as f64
        );
    }

    println!("\nMIN/MAX tree: i.i.d. M({d},12)");
    let mm = UniformSource::minmax_iid(d, 12, 0, 1 << 20, 5);
    let s = seq_alphabeta(&mm, false).leaves_evaluated;
    println!("  S~(T) = {s}\n");
    println!(
        "{:>3} {:>8} {:>9} {:>11} {:>10}",
        "w", "steps", "speedup", "procs used", "work"
    );
    for w in 0..=4 {
        let st = parallel_alphabeta(&mm, w, false);
        println!(
            "{w:>3} {:>8} {:>9.2} {:>11} {:>10}",
            st.steps,
            s as f64 / st.steps as f64,
            st.processors_used,
            st.total_work,
        );
    }
    println!("\n(Corollary 1: at width 1 the total work stays within a constant");
    println!(" factor of S(T); the extra work at higher widths is the price of");
    println!(" the additional O(n^w) parallelism.)");
}
